"""Durable batch-job tier: WAL persistence, crash resume, backpressure,
worker supervision, item timeouts, TTL eviction and dead-lettering.

These are unit tests over :class:`repro.serving.jobs.JobStore` with scripted
service stubs (no model), so every crash/restart scenario is deterministic:
"crash" = bounded-close a store mid-run and open a fresh one over the same
WAL directory, exactly what a SIGKILLed server's successor does.  The stubs
share a cache dict and per-item decode counters **across store generations**
— the stand-in for the real advice cache keyed on canonical cache keys —
which is what lets the resume differential assert *zero duplicate decodes*.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter
from concurrent.futures import Future
from types import SimpleNamespace

import pytest

from repro.api import AdviseRequest, ApiError
from repro.serving import JobLog, JobPolicy, JobStore
from repro.serving.joblog import WAL_FILENAME


def _response(code: str) -> SimpleNamespace:
    return SimpleNamespace(to_dict=lambda code=code: {"generated_code": code})


class _SharedCacheService:
    """advise_request_async stub with a cross-"restart" cache + decode counts.

    ``cache`` and ``decodes`` are shared between the stub instances handed to
    successive store generations, mirroring how the real service's advice
    cache keeps decoded results addressable by canonical cache key across a
    job-store reopen.  A code containing a key of ``gates`` resolves only
    once its gate opens (the hung/in-flight decode); everything else resolves
    synchronously — from the cache when present (no decode counted), else
    decoding once and populating the cache.
    """

    def __init__(self, cache: dict, decodes: Counter,
                 gates: dict[str, threading.Event] | None = None) -> None:
        self.cache = cache
        self.decodes = decodes
        self.gates = gates or {}
        self.calls: list[str] = []
        self.first_call = threading.Event()

    def advise_request_async(self, request: AdviseRequest) -> Future:
        self.calls.append(request.code)
        self.first_call.set()
        future: Future = Future()
        gate = next((gate for key, gate in self.gates.items()
                     if key in request.code), None)
        if gate is not None:
            def _decode_when_released(code: str = request.code) -> None:
                gate.wait()
                if code not in self.cache:
                    self.decodes[code] += 1
                    self.cache[code] = _response(code)
                future.set_result(self.cache[code])

            threading.Thread(target=_decode_when_released, daemon=True).start()
            return future
        if request.code not in self.cache:
            self.decodes[request.code] += 1
            self.cache[request.code] = _response(request.code)
        future.set_result(self.cache[request.code])
        return future


def _requests(*codes: str) -> list[AdviseRequest]:
    return [AdviseRequest(code=code) for code in codes]


# ------------------------------------------------------------- WAL basics


def test_finished_jobs_survive_restart_with_results(tmp_path):
    cache, decodes = {}, Counter()
    store = JobStore(_SharedCacheService(cache, decodes), log_dir=tmp_path)
    job = store.submit(_requests("int a;", "int b;"))
    assert job.wait(timeout=30)
    first_body = job.to_dict()
    store.close()

    reopened = JobStore(_SharedCacheService({}, Counter()), log_dir=tmp_path)
    try:
        restored = reopened.get("job-1")
        assert restored.to_dict() == first_body
        assert reopened.snapshot()["restored_items"] == 2
        # The watermark survived too: ids are never recycled.
        assert reopened.submit(_requests("int c;")).job_id == "job-2"
    finally:
        reopened.close()


def test_restart_resume_differential_no_duplicate_decodes(tmp_path):
    """The tentpole acceptance test.

    A three-item job is torn down mid-run: item a was collected into the
    WAL, item c decoded (and cached) but was never collected, item b is
    still in flight.  The successor store must finish the job with every
    item resolved exactly once, ``completed == total``, **zero** duplicate
    decodes (b and c are answered from the shared cache), and without
    recycling ids.
    """
    cache: dict = {}
    decodes: Counter = Counter()
    gate = threading.Event()
    svc1 = _SharedCacheService(cache, decodes, gates={"GATED": gate})

    store1 = JobStore(svc1, log_dir=tmp_path)
    job = store1.submit(_requests("int a;", "int GATED_b;", "int c;"))
    assert job.job_id == "job-1"
    # The worker collects in index order: a lands, b wedges the collection
    # loop, c's decode already finished into the shared cache uncollected.
    deadline = time.monotonic() + 30
    while job.to_dict()["completed"] < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert job.to_dict()["completed"] >= 1
    assert decodes["int c;"] == 1  # decoded pre-crash, result stranded
    # "Crash": bounded close abandons the wedged worker; the WAL is all
    # that survives.
    assert store1.close(wait=True, timeout=0.5) is False

    # The in-flight decode completes after the crash (as a real model decode
    # would) — into the shared cache, where the successor can find it.
    gate.set()
    while decodes["int GATED_b;"] == 0 and time.monotonic() < deadline:
        time.sleep(0.01)

    svc2 = _SharedCacheService(cache, decodes)
    store2 = JobStore(svc2, log_dir=tmp_path)
    try:
        resumed = store2.get("job-1")
        assert resumed is not job  # a fresh object, rebuilt from the WAL
        assert resumed.wait(timeout=30)
        body = resumed.to_dict()
        assert body["status"] == "done"
        assert body["completed"] == body["total"] == 3
        assert sorted(item["index"] for item in body["results"]) == [0, 1, 2]
        assert all(item["status"] == "ok" for item in body["results"])
        # Exactly one decode per distinct item, ever: the restored item was
        # never re-run, and the re-enqueued items hit the cache.
        assert decodes == {"int a;": 1, "int GATED_b;": 1, "int c;": 1}
        # The restored item (a) was answered from the WAL, not the service.
        assert "int a;" not in svc2.calls
        snapshot = store2.snapshot()
        assert snapshot["resumed_jobs"] == 1
        assert snapshot["restored_items"] == 1
        # Ids never recycle across the restart.
        assert store2.submit(_requests("int later;")).job_id == "job-2"
    finally:
        store2.close()


def test_replay_tolerates_a_torn_tail_and_compacts(tmp_path):
    cache, decodes = {}, Counter()
    store = JobStore(_SharedCacheService(cache, decodes), log_dir=tmp_path)
    job = store.submit(_requests("int a;"))
    assert job.wait(timeout=30)
    store.close()
    wal = tmp_path / WAL_FILENAME
    with open(wal, "a", encoding="utf-8") as handle:
        handle.write('{"type": "item", "id": "job-1", "ind')  # crash mid-write

    reopened = JobStore(_SharedCacheService({}, Counter()), log_dir=tmp_path)
    try:
        assert reopened.get("job-1").to_dict()["status"] == "done"
        assert reopened.snapshot()["wal_torn_records"] == 1
        # Reopen compacted the log: pure current state, no torn tail, the
        # watermark first.
        records = JobLog(tmp_path).replay()
        assert records[0]["type"] == "meta" and records[0]["next_id"] == 2
        assert all(json.dumps(record) for record in records)
        assert not any(record.get("type") == "evict" for record in records)
    finally:
        reopened.close()


# --------------------------------------------------------------- satellites


def test_worker_survives_exceptions_escaping_run_job(tmp_path):
    """A crash inside the job-run machinery itself (not an item decode) must
    fail that job's items with ``internal`` envelopes and keep the worker
    consuming — the PR 5 store silently lost its only worker thread here."""
    store = JobStore(_SharedCacheService({}, Counter()))
    original = store._run_job

    def exploding(job):
        if any("poison" in request.code for request in job.requests):
            raise RuntimeError("boom outside any item decode")
        original(job)

    store._run_job = exploding
    try:
        poisoned = store.submit(_requests("int poison;", "int poison2;"))
        assert poisoned.wait(timeout=30)
        body = poisoned.to_dict()
        assert body["status"] == "done"
        assert [item["error"]["code"] for item in body["results"]] == \
            ["internal", "internal"]
        # The worker is still alive: the next job runs normally.
        healthy = store.submit(_requests("int fine;"))
        assert healthy.wait(timeout=30)
        assert healthy.to_dict()["results"][0]["status"] == "ok"
    finally:
        store.close()


def test_hung_decode_times_out_into_an_error_envelope():
    gate = threading.Event()
    service = _SharedCacheService({}, Counter(), gates={"HUNG": gate})
    store = JobStore(service, policy=JobPolicy(item_timeout=0.2))
    try:
        job = store.submit(_requests("int HUNG_x;", "int ok;"))
        assert job.wait(timeout=30)
        by_index = {item["index"]: item for item in job.to_dict()["results"]}
        assert by_index[0]["status"] == "error"
        assert by_index[0]["error"]["code"] == "timeout"
        assert by_index[1]["status"] == "ok"
    finally:
        gate.set()  # release the stub thread
        store.close()


def test_close_is_bounded_even_with_a_wedged_worker():
    gate = threading.Event()
    service = _SharedCacheService({}, Counter(), gates={"HUNG": gate})
    store = JobStore(service, policy=JobPolicy(item_timeout=60.0))
    store.submit(_requests("int HUNG_x;"))
    service.first_call.wait(timeout=30)
    started = time.monotonic()
    assert store.close(wait=True, timeout=0.3) is False
    assert time.monotonic() - started < 5.0
    gate.set()


def test_closed_store_submit_is_unavailable_not_internal():
    store = JobStore(_SharedCacheService({}, Counter()))
    store.close()
    with pytest.raises(ApiError) as excinfo:
        store.submit(_requests("int late;"))
    assert excinfo.value.status == 503
    assert excinfo.value.code == "unavailable"


def test_expired_vs_unknown_jobs_are_distinguishable():
    store = JobStore(_SharedCacheService({}, Counter()),
                     policy=JobPolicy(ttl_seconds=0.05))
    try:
        job = store.submit(_requests("int a;"))
        assert job.wait(timeout=30)
        time.sleep(0.1)
        with pytest.raises(ApiError) as excinfo:
            store.get("job-1")
        assert excinfo.value.status == 410
        assert excinfo.value.code == "expired"
        with pytest.raises(ApiError) as excinfo:
            store.get("job-7")  # never issued
        assert excinfo.value.status == 404
        with pytest.raises(ApiError) as excinfo:
            store.get("job-0")  # not even a well-formed issued id
        assert excinfo.value.status == 404
        assert store.snapshot()["evicted_total"] == 1
    finally:
        store.close()


def test_backpressure_queue_full_and_per_client_quotas():
    gate = threading.Event()
    service = _SharedCacheService({}, Counter(), gates={"GATED": gate})
    store = JobStore(service, policy=JobPolicy(
        max_queue=2, max_inflight_per_client=1, item_timeout=60.0))
    try:
        first = store.submit(_requests("int GATED_1;"), client="alice")
        with pytest.raises(ApiError) as excinfo:
            store.submit(_requests("int GATED_2;"), client="alice")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "quota_exceeded"
        second = store.submit(_requests("int GATED_3;"), client="bob")
        with pytest.raises(ApiError) as excinfo:
            store.submit(_requests("int GATED_4;"), client="carol")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "queue_full"
        snapshot = store.snapshot()
        assert snapshot["rejected_by_reason"] == {
            "queue_full": 1, "quota_exceeded": 1}
        assert snapshot["backlog"] == 2
        gate.set()
        assert first.wait(timeout=30) and second.wait(timeout=30)
        # Backlog drained: the same clients can submit again.
        assert store.submit(_requests("int done;"), client="alice").wait(30)
    finally:
        gate.set()
        store.close()


def test_poison_items_dead_letter_after_repeated_crashes(tmp_path):
    """An item whose WAL ``attempt`` count crosses the limit without ever
    recording a result — the signature of an input that keeps killing the
    process — is parked as ``dead_letter`` instead of retried forever."""
    cache: dict = {}
    decodes: Counter = Counter()
    gate = threading.Event()  # never opens until the very end: the item
    # "crashes the process" every time it is attempted
    policy = JobPolicy(max_attempts=2, item_timeout=60.0)

    service = _SharedCacheService(cache, decodes, gates={"POISON": gate})
    store = JobStore(service, policy=policy, log_dir=tmp_path)
    store.submit(_requests("int POISON_x;"))
    assert service.first_call.wait(timeout=30)  # attempt 1 logged
    assert store.close(wait=True, timeout=0.2) is False

    service = _SharedCacheService(cache, decodes, gates={"POISON": gate})
    store = JobStore(service, policy=policy, log_dir=tmp_path)
    assert service.first_call.wait(timeout=30)  # attempt 2 logged on resume
    assert store.close(wait=True, timeout=0.2) is False

    service = _SharedCacheService(cache, decodes, gates={"POISON": gate})
    store = JobStore(service, policy=policy, log_dir=tmp_path)
    try:
        job = store.get("job-1")
        assert job.wait(timeout=30)  # attempt 3 > max_attempts: dead-letter
        item = job.to_dict()["results"][0]
        assert item["status"] == "dead_letter"
        assert item["error"]["code"] == "internal"
        assert "int POISON_x;" not in service.calls  # never attempted again
        assert store.snapshot()["dead_letter_items_total"] == 1
    finally:
        gate.set()  # unblock the two abandoned stub threads
        store.close()


def test_capacity_eviction_never_drops_unfinished_jobs_and_logs_tombstones(tmp_path):
    gate = threading.Event()
    service = _SharedCacheService({}, Counter(), gates={"GATED": gate})
    store = JobStore(service, policy=JobPolicy(
        max_jobs=2, max_queue=8, item_timeout=60.0))
    try:
        done1 = store.submit(_requests("int a;"))
        assert done1.wait(timeout=30)
        done2 = store.submit(_requests("int b;"))
        assert done2.wait(timeout=30)
        # The third submission pushes the store over capacity: the *oldest
        # finished* job is evicted; the new live job is untouchable.
        live = store.submit(_requests("int GATED_live;"))
        with pytest.raises(ApiError) as excinfo:
            store.get("job-1")
        assert excinfo.value.code == "expired"
        assert store.get("job-2") is done2
        assert store.get("job-3") is live
        gate.set()
        assert live.wait(timeout=30)
    finally:
        gate.set()
        store.close()


# ------------------------------------------------- InferenceService plumbing


def test_closed_service_jobs_property_is_unavailable(tiny_model):
    from repro.serving import InferenceService

    service = InferenceService(tiny_model, cache_capacity=8)
    service.close()
    with pytest.raises(ApiError) as excinfo:
        service.jobs
    assert excinfo.value.status == 503
    assert excinfo.value.code == "unavailable"


def test_service_registry_root_enables_the_wal(tiny_model, tmp_path):
    from repro.serving import InferenceService

    service = InferenceService(tiny_model, cache_capacity=8,
                               registry_root=tmp_path)
    try:
        assert service.metrics()["jobs"] == {"enabled": False}  # lazy
        assert service.job_store() is None
        snapshot = service.jobs.snapshot()
        assert snapshot["durable"] is True
        assert (tmp_path / "jobs" / WAL_FILENAME).exists()
        assert service.metrics()["jobs"]["enabled"] is True
    finally:
        service.close()


def test_orphaned_compaction_tmp_is_removed_on_reopen(tmp_path):
    """A crash between the compaction write and its atomic rename leaves a
    ``jobs.wal.tmp`` behind; reopening must delete it (it is dead weight that
    would otherwise accumulate forever) and replay only the real WAL."""
    cache, decodes = {}, Counter()
    store = JobStore(_SharedCacheService(cache, decodes), log_dir=tmp_path)
    job = store.submit(_requests("int a;"))
    assert job.wait(timeout=30)
    store.close()

    orphan = tmp_path / (WAL_FILENAME + ".tmp")
    orphan.write_text('{"type": "meta", "next_id": 99}\n', encoding="utf-8")

    reopened = JobStore(_SharedCacheService({}, Counter()), log_dir=tmp_path)
    try:
        assert not orphan.exists()
        assert reopened.snapshot()["wal_orphaned_tmp_removed"] == 1
        # State came from the real WAL, not the orphan: the watermark is
        # intact and ids continue, not jump to the orphan's 99.
        assert reopened.get("job-1").to_dict()["status"] == "done"
        assert reopened.submit(_requests("int b;")).job_id == "job-2"
    finally:
        reopened.close()


def test_joblog_open_reports_each_removed_orphan(tmp_path):
    (tmp_path / (WAL_FILENAME + ".tmp")).write_text("garbage", encoding="utf-8")
    log = JobLog(tmp_path)
    assert log.orphaned_tmp_removed == 1
    assert not (tmp_path / (WAL_FILENAME + ".tmp")).exists()
    # A clean reopen has nothing to remove.
    assert JobLog(tmp_path).orphaned_tmp_removed == 0
