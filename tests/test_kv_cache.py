"""KVCache internals: preallocated buffers, growth, views, in-place reorder.

The decode hot path leans on three properties of the cache the public decode
tests can't see directly:

* **amortized O(1) append** — capacity doubles instead of re-concatenating
  the history, and the returned arrays are views of the valid prefix;
* **view safety across growth** — a view handed out before a growth keeps
  referencing the (intact) retired buffer, so in-flight consumers never
  observe a resize;
* **in-place ``reorder_rows``** — beam pruning gathers rows inside the
  existing buffers without reallocating or disturbing spare capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.attention import KVCache
from repro.model.generation import DecoderLoop

PAD, SOS, EOS = 0, 1, 2


def step_block(rows: int, step: int, heads: int = 2, head_dim: int = 3) -> np.ndarray:
    """A distinguishable (rows, heads, 1, head_dim) block for step ``step``."""
    base = np.arange(rows, dtype=np.float64)[:, None, None, None]
    return base * 100.0 + step + np.zeros((rows, heads, 1, head_dim))


def history(rows: int, steps: int) -> np.ndarray:
    return np.concatenate([step_block(rows, s) for s in range(steps)], axis=2)


# ------------------------------------------------------------------ appending


def test_empty_cache_reports_none_and_zero_length():
    cache = KVCache()
    assert cache.keys is None
    assert cache.values is None
    assert cache.length == 0
    assert cache.capacity == 0


def test_append_accumulates_history_and_length():
    cache = KVCache()
    for step in range(5):
        keys, values = cache.append(step_block(4, step), -step_block(4, step))
        assert cache.length == step + 1
        assert keys.shape == (4, 2, step + 1, 3)
        np.testing.assert_array_equal(keys, history(4, step + 1))
        np.testing.assert_array_equal(values, -history(4, step + 1))


def test_capacity_doubles_and_append_is_in_place_between_growths():
    cache = KVCache()
    cache.append(step_block(2, 0), step_block(2, 0))
    assert cache.capacity == KVCache.MIN_CAPACITY
    buffer_id = id(cache._keys)
    for step in range(1, KVCache.MIN_CAPACITY):
        cache.append(step_block(2, step), step_block(2, step))
        # No reallocation while the preallocated capacity lasts.
        assert id(cache._keys) == buffer_id
    assert cache.length == cache.capacity == KVCache.MIN_CAPACITY
    cache.append(step_block(2, KVCache.MIN_CAPACITY), step_block(2, KVCache.MIN_CAPACITY))
    assert id(cache._keys) != buffer_id
    assert cache.capacity >= 2 * KVCache.MIN_CAPACITY
    np.testing.assert_array_equal(cache.keys, history(2, KVCache.MIN_CAPACITY + 1))


def test_large_first_append_preallocates_headroom():
    cache = KVCache()
    block = history(3, 20)
    keys, _ = cache.append(block, block)
    assert cache.length == 20
    assert cache.capacity >= 40  # twice the first append, not MIN_CAPACITY
    np.testing.assert_array_equal(keys, block)


def test_views_stay_valid_after_growth():
    """A view taken before growth still reads the retired buffer's data."""
    cache = KVCache()
    for step in range(3):
        cache.append(step_block(2, step), step_block(2, step))
    before_keys = cache.keys
    snapshot = before_keys.copy()
    # Force at least one growth.
    for step in range(3, KVCache.MIN_CAPACITY + 2):
        cache.append(step_block(2, step), step_block(2, step))
    np.testing.assert_array_equal(before_keys, snapshot)
    # The grown buffer carries the same prefix.
    np.testing.assert_array_equal(cache.keys[:, :, :3], snapshot)


def test_returned_arrays_are_views_not_copies():
    cache = KVCache()
    keys, values = cache.append(step_block(2, 0), step_block(2, 0))
    assert keys.base is cache._keys
    assert values.base is cache._values


def test_append_dtype_follows_input():
    cache = KVCache()
    keys, _ = cache.append(step_block(2, 0).astype(np.float32),
                           step_block(2, 0).astype(np.float32))
    assert keys.dtype == np.float32


# ------------------------------------------------------------------ reordering


def test_reorder_rows_gathers_in_place():
    cache = KVCache()
    for step in range(4):
        cache.append(step_block(3, step), -step_block(3, step))
    buffer_id = id(cache._keys)
    capacity = cache.capacity
    parents = np.asarray([2, 0, 0])
    cache.reorder_rows(parents)
    assert id(cache._keys) == buffer_id  # no reallocation
    assert cache.capacity == capacity    # spare capacity preserved
    expected = history(3, 4)[parents]
    np.testing.assert_array_equal(cache.keys, expected)
    np.testing.assert_array_equal(cache.values, -expected)


def test_reorder_rows_on_empty_cache_is_a_noop():
    cache = KVCache()
    cache.reorder_rows(np.asarray([0, 1]))  # must not raise
    assert cache.keys is None


def test_reorder_then_append_continues_the_gathered_history():
    cache = KVCache()
    for step in range(2):
        cache.append(step_block(2, step), step_block(2, step))
    cache.reorder_rows(np.asarray([1, 1]))
    cache.append(step_block(2, 2), step_block(2, 2))
    expected = history(2, 3)
    expected[:, :, :2] = history(2, 2)[[1, 1]]
    np.testing.assert_array_equal(cache.keys, expected)
    assert cache.length == 3


# ----------------------------------------------------- assignment compatibility


def test_assigning_keys_adopts_the_array_and_length():
    cache = KVCache()
    block = history(2, 5)
    cache.keys = block
    cache.values = block * 2.0
    assert cache.length == 5
    np.testing.assert_array_equal(cache.keys, block)
    np.testing.assert_array_equal(cache.values, block * 2.0)
    # Appending after adoption keeps the adopted history.
    cache.append(step_block(2, 5), step_block(2, 5))
    assert cache.length == 6
    np.testing.assert_array_equal(cache.keys[:, :, :5], block)


def test_constructor_with_arrays_matches_assignment():
    block = history(2, 3)
    cache = KVCache(keys=block, values=block)
    assert cache.length == 3
    np.testing.assert_array_equal(cache.keys, block)


def test_resetting_either_side_empties_the_whole_cache():
    """keys/values stay symmetric: a ``= None`` reset empties both sides."""
    block = history(2, 3)
    cache = KVCache(keys=block, values=block)
    cache.keys = None
    assert cache.keys is None and cache.values is None and cache.length == 0
    cache = KVCache(keys=block, values=block)
    cache.values = None
    assert cache.keys is None and cache.values is None and cache.length == 0
    # An emptied cache accepts fresh appends from scratch.
    cache.append(step_block(2, 0), step_block(2, 0))
    assert cache.length == 1


def test_half_initialised_cache_is_rejected():
    block = history(2, 3)
    with pytest.raises(ValueError, match="together"):
        KVCache(keys=block)
    cache = KVCache()
    cache.keys = block  # transient state of a paired assignment
    with pytest.raises(ValueError, match="assign both"):
        cache.append(step_block(2, 3), step_block(2, 3))


# ------------------------------------------------- decoder-loop length accounting


class _CountingModel:
    """Stub whose decode_step appends to a real cache (for loop accounting)."""

    vocab_size = 7

    def encode(self, source_ids, pad_id, *, training=False):
        return source_ids

    def start_decoding(self):
        from types import SimpleNamespace
        return SimpleNamespace(position=0, self_caches=[KVCache()], cross_caches=[])

    def decode_step(self, token_ids, memory, source_ids, pad_id, state):
        fed = token_ids[:, None, :, None].astype(np.float64)
        state.self_caches[0].append(fed, fed)
        state.position += 1
        logits = np.zeros((source_ids.shape[0], self.vocab_size))
        logits[:, 3] = 1.0  # never EOS: exercises max_length truncation
        return logits


def test_loop_cache_length_tracks_steps_until_max_length():
    from repro.model.generation import greedy_decode_batch

    model = _CountingModel()
    loop = DecoderLoop(model, [[3, 4], [5]], pad_id=PAD)
    current = np.full((loop.num_rows, 1), SOS, dtype=np.int64)
    for step in range(6):
        loop.step(current)
        assert loop.state.self_caches[0].length == step + 1
    # End-to-end: max_length bounds both the output and the cache history.
    out = greedy_decode_batch(_CountingModel(), [[3, 4], [5]], sos_id=SOS,
                              eos_id=EOS, pad_id=PAD, max_length=4)
    assert out == [[3, 3, 3, 3], [3, 3, 3, 3]]


def test_loop_with_only_empty_sources_allocates_no_cache_rows():
    loop = DecoderLoop(_CountingModel(), [[], []], pad_id=PAD)
    assert loop.num_rows == 0
    assert loop.state is None


def test_loop_reorder_preserves_cache_length():
    model = _CountingModel()
    loop = DecoderLoop(model, [[3, 4], [5]], pad_id=PAD, rows_per_source=2)
    current = np.full((loop.num_rows, 1), SOS, dtype=np.int64)
    loop.step(current)
    loop.step(current)
    loop.reorder_rows(np.asarray([1, 1, 2, 2]))
    assert loop.state.self_caches[0].length == 2


def test_loop_reorder_rejects_cross_source_parents():
    loop = DecoderLoop(_CountingModel(), [[3, 4], [5]], pad_id=PAD, rows_per_source=2)
    with pytest.raises(ValueError, match="within each source"):
        loop.reorder_rows(np.asarray([0, 2, 2, 3]))
