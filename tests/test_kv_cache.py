"""KVCache internals: preallocated buffers, growth, views, in-place reorder.

The decode hot path leans on three properties of the cache the public decode
tests can't see directly:

* **amortized O(1) append** — capacity doubles instead of re-concatenating
  the history, and the returned arrays are views of the valid prefix;
* **view safety across growth** — a view handed out before a growth keeps
  referencing the (intact) retired buffer, so in-flight consumers never
  observe a resize;
* **in-place ``reorder_rows``** — beam pruning gathers rows inside the
  existing buffers without reallocating or disturbing spare capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.attention import KVCache
from repro.model.generation import DecoderLoop

PAD, SOS, EOS = 0, 1, 2


def step_block(rows: int, step: int, heads: int = 2, head_dim: int = 3) -> np.ndarray:
    """A distinguishable (rows, heads, 1, head_dim) block for step ``step``."""
    base = np.arange(rows, dtype=np.float64)[:, None, None, None]
    return base * 100.0 + step + np.zeros((rows, heads, 1, head_dim))


def history(rows: int, steps: int) -> np.ndarray:
    return np.concatenate([step_block(rows, s) for s in range(steps)], axis=2)


# ------------------------------------------------------------------ appending


def test_empty_cache_reports_none_and_zero_length():
    cache = KVCache()
    assert cache.keys is None
    assert cache.values is None
    assert cache.length == 0
    assert cache.capacity == 0


def test_append_accumulates_history_and_length():
    cache = KVCache()
    for step in range(5):
        keys, values = cache.append(step_block(4, step), -step_block(4, step))
        assert cache.length == step + 1
        assert keys.shape == (4, 2, step + 1, 3)
        np.testing.assert_array_equal(keys, history(4, step + 1))
        np.testing.assert_array_equal(values, -history(4, step + 1))


def test_capacity_doubles_and_append_is_in_place_between_growths():
    cache = KVCache()
    cache.append(step_block(2, 0), step_block(2, 0))
    assert cache.capacity == KVCache.MIN_CAPACITY
    buffer_id = id(cache._keys)
    for step in range(1, KVCache.MIN_CAPACITY):
        cache.append(step_block(2, step), step_block(2, step))
        # No reallocation while the preallocated capacity lasts.
        assert id(cache._keys) == buffer_id
    assert cache.length == cache.capacity == KVCache.MIN_CAPACITY
    cache.append(step_block(2, KVCache.MIN_CAPACITY), step_block(2, KVCache.MIN_CAPACITY))
    assert id(cache._keys) != buffer_id
    assert cache.capacity >= 2 * KVCache.MIN_CAPACITY
    np.testing.assert_array_equal(cache.keys, history(2, KVCache.MIN_CAPACITY + 1))


def test_large_first_append_preallocates_headroom():
    cache = KVCache()
    block = history(3, 20)
    keys, _ = cache.append(block, block)
    assert cache.length == 20
    assert cache.capacity >= 40  # twice the first append, not MIN_CAPACITY
    np.testing.assert_array_equal(keys, block)


def test_views_stay_valid_after_growth():
    """A view taken before growth still reads the retired buffer's data."""
    cache = KVCache()
    for step in range(3):
        cache.append(step_block(2, step), step_block(2, step))
    before_keys = cache.keys
    snapshot = before_keys.copy()
    # Force at least one growth.
    for step in range(3, KVCache.MIN_CAPACITY + 2):
        cache.append(step_block(2, step), step_block(2, step))
    np.testing.assert_array_equal(before_keys, snapshot)
    # The grown buffer carries the same prefix.
    np.testing.assert_array_equal(cache.keys[:, :, :3], snapshot)


def test_returned_arrays_are_views_not_copies():
    cache = KVCache()
    keys, values = cache.append(step_block(2, 0), step_block(2, 0))
    assert keys.base is cache._keys
    assert values.base is cache._values


def test_append_dtype_follows_input():
    cache = KVCache()
    keys, _ = cache.append(step_block(2, 0).astype(np.float32),
                           step_block(2, 0).astype(np.float32))
    assert keys.dtype == np.float32


# ------------------------------------------------------------------ reordering


def test_reorder_rows_gathers_in_place():
    cache = KVCache()
    for step in range(4):
        cache.append(step_block(3, step), -step_block(3, step))
    buffer_id = id(cache._keys)
    capacity = cache.capacity
    parents = np.asarray([2, 0, 0])
    cache.reorder_rows(parents)
    assert id(cache._keys) == buffer_id  # no reallocation
    assert cache.capacity == capacity    # spare capacity preserved
    expected = history(3, 4)[parents]
    np.testing.assert_array_equal(cache.keys, expected)
    np.testing.assert_array_equal(cache.values, -expected)


def test_reorder_rows_on_empty_cache_is_a_noop():
    cache = KVCache()
    cache.reorder_rows(np.asarray([0, 1]))  # must not raise
    assert cache.keys is None


def test_reorder_then_append_continues_the_gathered_history():
    cache = KVCache()
    for step in range(2):
        cache.append(step_block(2, step), step_block(2, step))
    cache.reorder_rows(np.asarray([1, 1]))
    cache.append(step_block(2, 2), step_block(2, 2))
    expected = history(2, 3)
    expected[:, :, :2] = history(2, 2)[[1, 1]]
    np.testing.assert_array_equal(cache.keys, expected)
    assert cache.length == 3


# ----------------------------------------------------- assignment compatibility


def test_assigning_keys_adopts_the_array_and_length():
    cache = KVCache()
    block = history(2, 5)
    cache.keys = block
    cache.values = block * 2.0
    assert cache.length == 5
    np.testing.assert_array_equal(cache.keys, block)
    np.testing.assert_array_equal(cache.values, block * 2.0)
    # Appending after adoption keeps the adopted history.
    cache.append(step_block(2, 5), step_block(2, 5))
    assert cache.length == 6
    np.testing.assert_array_equal(cache.keys[:, :, :5], block)


def test_constructor_with_arrays_matches_assignment():
    block = history(2, 3)
    cache = KVCache(keys=block, values=block)
    assert cache.length == 3
    np.testing.assert_array_equal(cache.keys, block)


def test_resetting_either_side_empties_the_whole_cache():
    """keys/values stay symmetric: a ``= None`` reset empties both sides."""
    block = history(2, 3)
    cache = KVCache(keys=block, values=block)
    cache.keys = None
    assert cache.keys is None and cache.values is None and cache.length == 0
    cache = KVCache(keys=block, values=block)
    cache.values = None
    assert cache.keys is None and cache.values is None and cache.length == 0
    # An emptied cache accepts fresh appends from scratch.
    cache.append(step_block(2, 0), step_block(2, 0))
    assert cache.length == 1


def test_half_initialised_cache_is_rejected():
    block = history(2, 3)
    with pytest.raises(ValueError, match="together"):
        KVCache(keys=block)
    cache = KVCache()
    cache.keys = block  # transient state of a paired assignment
    with pytest.raises(ValueError, match="assign both"):
        cache.append(step_block(2, 3), step_block(2, 3))


# ------------------------------------------------- decoder-loop length accounting


class _CountingModel:
    """Stub whose decode_step appends to a real cache (for loop accounting)."""

    vocab_size = 7

    def encode(self, source_ids, pad_id, *, training=False):
        return source_ids

    def start_decoding(self):
        from types import SimpleNamespace
        return SimpleNamespace(position=0, self_caches=[KVCache()], cross_caches=[])

    def decode_step(self, token_ids, memory, source_ids, pad_id, state):
        fed = token_ids[:, None, :, None].astype(np.float64)
        state.self_caches[0].append(fed, fed)
        state.position += 1
        logits = np.zeros((source_ids.shape[0], self.vocab_size))
        logits[:, 3] = 1.0  # never EOS: exercises max_length truncation
        return logits


def test_loop_cache_length_tracks_steps_until_max_length():
    from repro.model.generation import greedy_decode_batch

    model = _CountingModel()
    loop = DecoderLoop(model, [[3, 4], [5]], pad_id=PAD)
    current = np.full((loop.num_rows, 1), SOS, dtype=np.int64)
    for step in range(6):
        loop.step(current)
        assert loop.state.self_caches[0].length == step + 1
    # End-to-end: max_length bounds both the output and the cache history.
    out = greedy_decode_batch(_CountingModel(), [[3, 4], [5]], sos_id=SOS,
                              eos_id=EOS, pad_id=PAD, max_length=4)
    assert out == [[3, 3, 3, 3], [3, 3, 3, 3]]


def test_loop_with_only_empty_sources_allocates_no_cache_rows():
    loop = DecoderLoop(_CountingModel(), [[], []], pad_id=PAD)
    assert loop.num_rows == 0
    assert loop.state is None


def test_loop_reorder_preserves_cache_length():
    model = _CountingModel()
    loop = DecoderLoop(model, [[3, 4], [5]], pad_id=PAD, rows_per_source=2)
    current = np.full((loop.num_rows, 1), SOS, dtype=np.int64)
    loop.step(current)
    loop.step(current)
    loop.reorder_rows(np.asarray([1, 1, 2, 2]))
    assert loop.state.self_caches[0].length == 2


def test_loop_reorder_rejects_cross_source_parents():
    loop = DecoderLoop(_CountingModel(), [[3, 4], [5]], pad_id=PAD, rows_per_source=2)
    with pytest.raises(ValueError, match="within each source"):
        loop.reorder_rows(np.asarray([0, 2, 2, 3]))

# -------------------------------------------------- insert_rows / retire_rows


def test_insert_rows_with_history_adopts_cross_memory_mid_batch():
    """Cross-cache join: a new row arrives carrying its projected memory."""
    cache = KVCache()
    cache.append(history(2, 4), -history(2, 4))
    joiner = np.full((1, 2, 3, 3), 7.0)
    cache.insert_rows(1, joiner, -joiner)
    assert cache.rows == 3
    assert cache.length == 4          # longest survivor still rules the view
    assert cache.is_ragged
    np.testing.assert_array_equal(cache.row_lengths, [4, 3, 4])
    np.testing.assert_array_equal(cache.keys[0], history(2, 4)[0])
    np.testing.assert_array_equal(cache.keys[2], history(2, 4)[1])
    np.testing.assert_array_equal(cache.keys[1, :, :3], joiner[0])
    # The joiner's trailing region is zero-filled, never garbage.
    np.testing.assert_array_equal(cache.keys[1, :, 3:], 0.0)


def test_insert_rows_longer_history_widens_the_view():
    cache = KVCache()
    cache.append(history(2, 2), history(2, 2))
    joiner = np.full((1, 2, 6, 3), 3.0)
    cache.insert_rows(2, joiner, joiner)
    assert cache.length == 6
    np.testing.assert_array_equal(cache.row_lengths, [2, 2, 6])
    np.testing.assert_array_equal(cache.keys[:2, :, :2], history(2, 2))
    np.testing.assert_array_equal(cache.keys[:2, :, 2:], 0.0)
    np.testing.assert_array_equal(cache.keys[2], joiner[0])


def test_insert_empty_rows_then_append_writes_each_row_at_its_own_length():
    """Self-cache join: empty rows stay contiguous-front / zero-tail under
    the ragged per-row append."""
    cache = KVCache()
    cache.append(history(2, 3), history(2, 3))
    cache.insert_rows(1, count=1)
    np.testing.assert_array_equal(cache.row_lengths, [3, 0, 3])
    step = step_block(3, 9)
    cache.append(step, step)
    np.testing.assert_array_equal(cache.row_lengths, [4, 1, 4])
    # Veterans appended at position 3, the joiner at position 0.
    np.testing.assert_array_equal(cache.keys[0, :, 3], step[0, :, 0])
    np.testing.assert_array_equal(cache.keys[1, :, 0], step[1, :, 0])
    np.testing.assert_array_equal(cache.keys[1, :, 1:], 0.0)
    np.testing.assert_array_equal(cache.keys[2, :, 3], step[2, :, 0])


def test_insert_count_only_on_empty_cache_is_noop_at_any_index():
    """Regression: several requests may join before the first decode step
    materialises the row axis, so the *second* join inserts at index 1 into
    a cache that still reports zero rows — a no-op, not a range error."""
    cache = KVCache()
    for index in (0, 1, 5):
        cache.insert_rows(index, count=2)  # must not raise
    assert cache.rows == 0 and cache.keys is None
    # The first append then carries every pending row at once.
    cache.append(history(3, 1), history(3, 1))
    assert cache.rows == 3 and cache.length == 1


def test_insert_rows_validation_errors():
    cache = KVCache()
    cache.append(history(2, 2), history(2, 2))
    with pytest.raises(ValueError, match="out of range"):
        cache.insert_rows(3, count=1)
    with pytest.raises(ValueError, match="out of range"):
        cache.insert_rows(-1, count=1)
    with pytest.raises(ValueError, match="count must be"):
        cache.insert_rows(0, count=0)
    with pytest.raises(ValueError, match="together"):
        cache.insert_rows(0, history(1, 2))
    with pytest.raises(ValueError, match="disagrees"):
        cache.insert_rows(0, history(2, 2), history(2, 2), count=3)
    with pytest.raises(ValueError, match="keys/values or count"):
        cache.insert_rows(0)
    empty = KVCache()
    with pytest.raises(ValueError, match="out of range"):
        empty.insert_rows(-2, count=1)


def test_retire_rows_compacts_in_place_and_renarrows_the_view():
    cache = KVCache()
    cache.append(history(4, 5), -history(4, 5))
    buffer_id = id(cache._keys)
    cache.retire_rows([1, 3])
    assert id(cache._keys) == buffer_id  # compaction reuses the buffers
    assert cache.rows == 2
    expected = history(4, 5)[[0, 2]]
    np.testing.assert_array_equal(cache.keys, expected)
    np.testing.assert_array_equal(cache.values, -expected)


def test_retire_longest_row_shrinks_length_to_survivors():
    cache = KVCache()
    cache.append(history(2, 2), history(2, 2))
    long_row = np.full((1, 2, 8, 3), 5.0)
    cache.insert_rows(2, long_row, long_row)
    assert cache.length == 8
    cache.retire_rows([2])
    assert cache.length == 2          # view re-narrows to the survivors
    assert not cache.is_ragged
    np.testing.assert_array_equal(cache.keys, history(2, 2))


def test_retire_all_rows_empties_the_cache():
    cache = KVCache()
    cache.append(history(3, 2), history(3, 2))
    cache.retire_rows([2, 0, 1, 1])   # duplicates and any order are fine
    assert cache.keys is None and cache.rows == 0 and cache.length == 0
    cache.append(history(2, 1), history(2, 1))  # accepts a fresh start
    assert cache.rows == 2


def test_retire_rows_validation_errors():
    cache = KVCache()
    with pytest.raises(ValueError, match="empty cache"):
        cache.retire_rows([0])
    cache.append(history(2, 2), history(2, 2))
    with pytest.raises(ValueError, match="out of range"):
        cache.retire_rows([2])
    with pytest.raises(ValueError, match="out of range"):
        cache.retire_rows([-1])
    cache.retire_rows([])             # no-op
    assert cache.rows == 2


def test_interleaved_insert_reorder_retire_keeps_histories_straight():
    """The full continuous-batching life cycle on one cache: join, beam
    reorder, retire, join again — every row's history stays bit-exact."""
    cache = KVCache()
    cache.append(history(2, 2), history(2, 2))          # rows A, B
    cache.insert_rows(2, count=1)                       # row C joins empty
    step = step_block(3, 5)
    cache.append(step, step)                            # lengths 3, 3, 1
    cache.reorder_rows(np.asarray([1, 1, 2]))           # A <- B (beam prune)
    np.testing.assert_array_equal(cache.row_lengths, [3, 3, 1])
    np.testing.assert_array_equal(cache.keys[0, :, :3], cache.keys[1, :, :3])
    cache.retire_rows([0])                              # pruned copy leaves
    assert cache.rows == 2
    np.testing.assert_array_equal(cache.keys[1, :, 0], step[2, :, 0])
    joiner = np.full((2, 2, 4, 3), 9.0)
    cache.insert_rows(1, joiner, joiner)                # two-row join mid-deck
    np.testing.assert_array_equal(cache.row_lengths, [3, 4, 4, 1])
    assert cache.rows == 4 and cache.length == 4
    np.testing.assert_array_equal(cache.keys[1], joiner[0])
    np.testing.assert_array_equal(cache.keys[2], joiner[1])


def test_ragged_growth_zero_fills_new_capacity():
    """Growth while ragged allocates zeroed buffers: the short rows' trailing
    regions must stay 0.0 (a NaN there would poison ``0 * garbage``)."""
    cache = KVCache()
    cache.append(history(2, 2), history(2, 2))
    cache.insert_rows(2, count=1)
    for step in range(2, 2 + KVCache.MIN_CAPACITY + 2):  # force a growth
        block = step_block(3, step)
        cache.append(block, block)
    lengths = cache.row_lengths
    assert lengths[2] == lengths[0] - 2
    np.testing.assert_array_equal(cache.keys[2, :, lengths[2]:], 0.0)
