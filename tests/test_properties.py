"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clang.codegen import standardize
from repro.clang.lexer import code_token_texts
from repro.clang.parser import parse_source, parses_cleanly
from repro.corpus.families import MPI_FAMILIES
from repro.corpus.templates import random_style
from repro.dataset.removal import count_mpi_calls, remove_mpi_calls
from repro.evaluation.bleu import sentence_bleu
from repro.evaluation.classification import MPICallSite, match_call_sites
from repro.evaluation.rouge import lcs_length, rouge_l
from repro.model.autograd import Tensor
from repro.tokenization.vocab import Vocabulary
from repro.xsbt import sbt_tokens, xsbt_length, sbt_length

_FAMILY_NAMES = [f.name for f in MPI_FAMILIES]


def _generate_program(family_index: int, seed: int) -> str:
    family = MPI_FAMILIES[family_index % len(MPI_FAMILIES)]
    rng = np.random.default_rng(seed)
    return family.template(rng, random_style(rng))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(family_index=st.integers(0, len(MPI_FAMILIES) - 1), seed=st.integers(0, 10_000))
def test_every_generated_program_parses_and_standardises(family_index, seed):
    source = _generate_program(family_index, seed)
    assert parses_cleanly(source)
    once = standardize(source)
    assert standardize(once) == once


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(family_index=st.integers(0, len(MPI_FAMILIES) - 1), seed=st.integers(0, 10_000))
def test_removal_strips_all_and_only_mpi_calls(family_index, seed):
    source = standardize(_generate_program(family_index, seed))
    result = remove_mpi_calls(source)
    # Invariant 1: nothing MPI remains.
    assert count_mpi_calls(result.stripped_code) == 0
    # Invariant 2: removal is line-conservative: stripped lines + removed = original lines.
    assert (len(result.stripped_code.splitlines()) + len(result.removed)
            == len(source.splitlines()))
    # Invariant 3: every recorded line really contained that call.
    source_lines = source.splitlines()
    for removed in result.removed:
        assert removed.function in source_lines[removed.line - 1]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(family_index=st.integers(0, len(MPI_FAMILIES) - 1), seed=st.integers(0, 10_000))
def test_xsbt_never_longer_than_sbt(family_index, seed):
    unit = parse_source(_generate_program(family_index, seed))
    assert xsbt_length(unit) <= sbt_length(unit)
    tokens = sbt_tokens(unit)
    assert tokens.count("(") == tokens.count(")")


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from(["int", "x", "=", "1", ";", "+", "(", ")", "foo", "0.5"]),
                min_size=1, max_size=40))
def test_vocabulary_roundtrip(tokens):
    vocab = Vocabulary.build([tokens])
    ids = vocab.encode(tokens)
    assert vocab.decode(ids) == tokens


@settings(max_examples=50, deadline=None)
@given(st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=3), min_size=1, max_size=20))
def test_text_metrics_identity_and_bounds(tokens):
    assert sentence_bleu(tokens, tokens) > 0.99
    assert rouge_l(tokens, tokens) == 1.0
    assert lcs_length(tokens, tokens) == len(tokens)
    other = ["zzz"] * len(tokens)
    assert 0.0 <= sentence_bleu(other, tokens) <= 1.0
    assert 0.0 <= rouge_l(other, tokens) <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["MPI_Send", "MPI_Recv", "MPI_Reduce"]),
                          st.integers(1, 40)), max_size=12))
def test_match_call_sites_conservation(sites):
    """TP + FP == #predictions and TP + FN == #references, for self-matching."""
    call_sites = [MPICallSite(f, l) for f, l in sites]
    counts = match_call_sites(call_sites, call_sites)
    assert counts.tp + counts.fp == len(call_sites)
    assert counts.tp + counts.fn == len(call_sites)
    assert counts.fp == 0 and counts.fn == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=24))
def test_softmax_is_a_distribution(values):
    x = Tensor(np.asarray(values).reshape(1, -1))
    probs = x.softmax(axis=-1).data
    assert np.all(probs >= 0)
    assert np.isclose(probs.sum(), 1.0)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(family_index=st.integers(0, len(MPI_FAMILIES) - 1), seed=st.integers(0, 10_000))
def test_token_count_is_stable_under_standardisation(family_index, seed):
    """Standardisation may only change whitespace, never the token stream."""
    source = _generate_program(family_index, seed)
    standardized = standardize(source)
    assert code_token_texts(source) == code_token_texts(standardized)
