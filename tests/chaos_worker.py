"""A stub worker speaking the ``server.py`` wire contract, built to be hurt.

``tests/test_worker_pool.py`` runs the real :class:`repro.serving.pool.WorkerPool`
and :class:`repro.serving.router.Router` in-process, but boots *these* as the
worker subprocesses instead of full model servers: they answer the same
endpoints (``/healthz``, ``/metrics``, ``/v1/advise``, ``/advise``,
``/v1/advise/stream``, ``/v1/advise/batch`` + ``/v1/jobs/{id}``,
``/v1/models`` + per-model ``load``/``swap``, ``/admin/drain``) in
milliseconds, which keeps the chaos suite fast and deterministic, and they
expose deliberate failure modes on top:

``POST /chaos/wedge``
    Stop answering advise requests (hold them until unwedged) — the
    read-timeout / failover path, as distinct from a dead socket.
``POST /chaos/unwedge``
    Release held requests.

Advise responses carry ``worker`` (the ``--worker-id``) and ``pid`` so tests
can assert *which* replica answered and whether it was respawned.  This file
is intentionally under ``tests/`` (run by path, not imported): subprocess
code is invisible to coverage, so it must not live inside the package.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class ChaosState:
    """Mutable worker state the handler threads share."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.lock = threading.Lock()
        self.wedged = threading.Event()
        self.unwedged = threading.Event()
        self.unwedged.set()
        self.draining = False
        self.requests_served = 0
        self.jobs: dict[str, dict] = {}
        self.next_job = 0
        # Fake registry: one model behind the default alias, swappable.
        self.models = {"demo": "demo@stub1"}
        self.aliases = {"default": "demo"}


class ChaosWorkerHandler(BaseHTTPRequestHandler):
    state: ChaosState

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------ GET

    def do_GET(self) -> None:  # noqa: N802
        state = self.state
        if self.path == "/healthz":
            if state.draining:
                self._json(503, {"status": "draining", "draining": True,
                                 "pending": 0})
            else:
                self._json(200, {"status": "ok", "draining": False,
                                 "pending": None,
                                 "worker": state.worker_id,
                                 "pid": os.getpid()})
        elif self.path == "/metrics":
            with state.lock:
                served = state.requests_served
            self._json(200, {"requests_total": served,
                             "worker": state.worker_id})
        elif self.path == "/v1/models":
            with state.lock:
                default = state.models[state.aliases["default"]]
                models = [{"name": name, "revision": identity.split("@")[1],
                           "loaded": True, "requests_served": 0}
                          for name, identity in sorted(state.models.items())]
            self._json(200, {"api_version": "v1", "default": default,
                             "aliases": dict(state.aliases),
                             "models": models, "worker": state.worker_id})
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            with state.lock:
                job = state.jobs.get(job_id)
            if job is None:
                self._json(404, {"error": {"code": "not_found",
                                           "message": f"unknown job {job_id}",
                                           "field": None}})
            else:
                self._json(200, job)
        else:
            self._json(404, {"error": {"code": "not_found",
                                       "message": f"unknown path {self.path}",
                                       "field": None}})

    # ----------------------------------------------------------------- POST

    def do_POST(self) -> None:  # noqa: N802
        state = self.state
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            self._json(400, {"error": {"code": "invalid_request",
                                       "message": "invalid JSON",
                                       "field": None}})
            return
        if self.path == "/chaos/wedge":
            state.unwedged.clear()
            state.wedged.set()
            self._json(200, {"wedged": True})
        elif self.path == "/chaos/unwedge":
            state.wedged.clear()
            state.unwedged.set()
            self._json(200, {"wedged": False})
        elif self.path == "/admin/drain":
            state.draining = True
            self._json(200, {"api_version": "v1", "draining": True,
                             "pending": 0})
        elif self.path in ("/v1/advise", "/advise"):
            self._advise(payload, legacy=self.path == "/advise")
        elif self.path == "/v1/advise/stream":
            self._advise_stream(payload)
        elif self.path == "/v1/advise/batch":
            self._submit(payload)
        elif self.path.startswith("/v1/models/") and self.path.endswith("/swap"):
            self._swap(self.path.split("/")[3], payload)
        elif self.path.startswith("/v1/models/") and self.path.endswith("/load"):
            self._load(self.path.split("/")[3])
        else:
            self._json(404, {"error": {"code": "not_found",
                                       "message": f"unknown path {self.path}",
                                       "field": None}})

    # ------------------------------------------------------------- behaviour

    def _refuse_if_draining(self) -> bool:
        if self.state.draining:
            self._json(503, {"error": {"code": "unavailable",
                                       "message": "this replica is draining",
                                       "field": None}},
                       retry_after="1")
            return True
        return False

    def _hold_if_wedged(self) -> None:
        # A wedged worker accepts the connection but never answers — the
        # router must burn its read timeout, not a connect error.
        if self.state.wedged.is_set():
            self.state.unwedged.wait(timeout=120.0)

    def _advise(self, payload: dict, *, legacy: bool) -> None:
        if self._refuse_if_draining():
            return
        self._hold_if_wedged()
        state = self.state
        with state.lock:
            state.requests_served += 1
            model = state.models[state.aliases["default"]]
        body = {
            "generated_code": payload.get("code", ""),
            "advice": [],
            "diagnostics": [],
            "cached": False,
            "latency_ms": 0.1,
            "worker": state.worker_id,
            "pid": os.getpid(),
            "model": model,
        }
        if not legacy:
            body = {"api_version": "v1", **body,
                    "strategy": {"name": "greedy"},
                    "cache_key": "stub"}
        self._json(200, body)

    def _advise_stream(self, payload: dict) -> None:
        if self._refuse_if_draining():
            return
        self._hold_if_wedged()
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        for index, token in enumerate(["int", "main"]):
            self.wfile.write(json.dumps({"type": "token", "index": index,
                                         "token": token}).encode() + b"\n")
            self.wfile.flush()
        final = {"type": "final",
                 "response": {"api_version": "v1",
                              "generated_code": payload.get("code", ""),
                              "worker": self.state.worker_id,
                              "pid": os.getpid()}}
        self.wfile.write(json.dumps(final).encode() + b"\n")

    def _submit(self, payload: dict) -> None:
        if self._refuse_if_draining():
            return
        state = self.state
        items = payload.get("items") or []
        with state.lock:
            state.next_job += 1
            job_id = f"job-{state.next_job}"
            state.jobs[job_id] = {
                "api_version": "v1", "job_id": job_id, "status": "done",
                "total": len(items), "completed": len(items),
                "worker": state.worker_id,
                "results": [{"status": "ok",
                             "response": {"generated_code":
                                          item.get("code", "")}}
                            for item in items],
            }
        accepted = dict(state.jobs[job_id])
        accepted["status"] = "queued"
        accepted.pop("results")
        self._json(202, accepted)

    def _swap(self, name: str, payload: dict) -> None:
        state = self.state
        alias = payload.get("alias", "default")
        with state.lock:
            if name not in state.models:
                self._json(422, {"error": {"code": "unknown_model",
                                           "message": f"unknown model {name}",
                                           "field": None}})
                return
            previous = state.models.get(state.aliases.get(alias, ""), None)
            state.aliases[alias] = name
            current = state.models[name]
        self._json(200, {"api_version": "v1", "alias": alias,
                         "previous": previous, "current": current,
                         "worker": state.worker_id})

    def _load(self, name: str) -> None:
        state = self.state
        with state.lock:
            identity = state.models.setdefault(name, f"{name}@stub1")
        self._json(200, {"api_version": "v1",
                         "model": {"name": name,
                                   "revision": identity.split("@")[1],
                                   "loaded": True},
                         "worker": state.worker_id})

    # -------------------------------------------------------------- plumbing

    def _json(self, status: int, payload: dict,
              retry_after: str | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.end_headers()
        self.wfile.write(body)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--worker-id", default="w?")
    parser.add_argument("--registry-root", default=None)  # accepted, unused
    parser.add_argument("--start-delay", type=float, default=0.0,
                        help="sleep before binding (slow-boot simulation)")
    args = parser.parse_args(argv)
    if args.start_delay:
        time.sleep(args.start_delay)
    state = ChaosState(args.worker_id)
    handler = type("BoundChaosWorkerHandler", (ChaosWorkerHandler,),
                   {"state": state})
    server = ThreadingHTTPServer((args.host, args.port), handler)
    server.daemon_threads = True
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
