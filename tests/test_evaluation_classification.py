"""Tests for the location-tolerant classification metrics (RQ1 + RQ2)."""

import pytest

from repro.evaluation.classification import (
    MatchCounts,
    MPICallSite,
    evaluate_program,
    extract_call_sites,
    match_call_sites,
    scores_from_counts,
)


class TestExtractCallSites:
    def test_extracts_functions_and_lines(self, pi_source):
        sites = extract_call_sites(pi_source)
        names = [s.function for s in sites]
        assert names == ["MPI_Init", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Reduce",
                         "MPI_Finalize"]
        for site in sites:
            assert site.function in pi_source.splitlines()[site.line - 1]

    def test_ignores_constants(self):
        sites = extract_call_sites("int main() { int c = MPI_COMM_WORLD; }")
        assert sites == []

    def test_multiple_calls_one_line(self):
        sites = extract_call_sites("MPI_Barrier(MPI_COMM_WORLD); MPI_Finalize();")
        assert [s.function for s in sites] == ["MPI_Barrier", "MPI_Finalize"]


class TestMatching:
    def test_exact_match_is_tp(self):
        predicted = [MPICallSite("MPI_Init", 5)]
        reference = [MPICallSite("MPI_Init", 5)]
        counts = match_call_sites(predicted, reference)
        assert (counts.tp, counts.fp, counts.fn) == (1, 0, 0)

    def test_one_line_tolerance(self):
        counts = match_call_sites([MPICallSite("MPI_Send", 10)],
                                  [MPICallSite("MPI_Send", 11)])
        assert counts.tp == 1

    def test_two_line_difference_is_fp_and_fn(self):
        counts = match_call_sites([MPICallSite("MPI_Send", 10)],
                                  [MPICallSite("MPI_Send", 13)])
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 1)

    def test_wrong_function_is_fp_and_fn(self):
        counts = match_call_sites([MPICallSite("MPI_Send", 10)],
                                  [MPICallSite("MPI_Recv", 10)])
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 1)

    def test_missing_prediction_is_fn(self):
        counts = match_call_sites([], [MPICallSite("MPI_Reduce", 3)])
        assert (counts.tp, counts.fp, counts.fn) == (0, 0, 1)

    def test_extra_prediction_is_fp(self):
        counts = match_call_sites([MPICallSite("MPI_Reduce", 3)], [])
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 0)

    def test_each_reference_claimed_once(self):
        predicted = [MPICallSite("MPI_Send", 10), MPICallSite("MPI_Send", 10)]
        reference = [MPICallSite("MPI_Send", 10)]
        counts = match_call_sites(predicted, reference)
        assert (counts.tp, counts.fp) == (1, 1)

    def test_nearest_reference_preferred(self):
        predicted = [MPICallSite("MPI_Send", 10)]
        reference = [MPICallSite("MPI_Send", 11), MPICallSite("MPI_Send", 10)]
        counts = match_call_sites(predicted, reference)
        assert counts.tp == 1 and counts.fn == 1

    def test_custom_tolerance(self):
        counts = match_call_sites([MPICallSite("MPI_Send", 10)],
                                  [MPICallSite("MPI_Send", 14)], line_tolerance=5)
        assert counts.tp == 1


class TestMetrics:
    def test_precision_recall_f1(self):
        counts = MatchCounts(tp=8, fp=2, fn=4)
        assert counts.precision == pytest.approx(0.8)
        assert counts.recall == pytest.approx(8 / 12)
        assert counts.f1 == pytest.approx(2 * 0.8 * (8 / 12) / (0.8 + 8 / 12))

    def test_zero_denominators(self):
        counts = MatchCounts()
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_merge_accumulates_per_function(self):
        a = MatchCounts()
        a.add_tp("MPI_Send")
        b = MatchCounts()
        b.add_fp("MPI_Send")
        b.add_fn("MPI_Reduce")
        a.merge(b)
        assert a.tp == 1 and a.fp == 1 and a.fn == 1
        assert a.per_function["MPI_Send"].tp == 1
        assert a.per_function["MPI_Send"].fp == 1

    def test_restricted_to_common_core(self):
        counts = MatchCounts()
        counts.add_tp("MPI_Reduce")        # common core
        counts.add_tp("MPI_Allreduce")     # not common core
        counts.add_fn("MPI_Send")          # common core
        from repro.mpiknow import is_common_core

        core = counts.restricted(is_common_core)
        assert core.tp == 1 and core.fn == 1
        assert "MPI_Allreduce" not in core.per_function

    def test_scores_from_counts_produces_all_six(self):
        counts = MatchCounts()
        counts.add_tp("MPI_Init")
        counts.add_fp("MPI_Allreduce")
        scores = scores_from_counts(counts)
        table = scores.as_dict()
        assert set(table) == {"M-F1", "M-Precision", "M-Recall",
                              "MCC-F1", "MCC-Precision", "MCC-Recall"}
        assert table["MCC-Precision"] == 1.0
        assert table["M-Precision"] == 0.5


class TestEvaluateProgram:
    def test_perfect_prediction_scores_one(self, pi_source):
        counts = evaluate_program(pi_source, pi_source)
        assert counts.fp == 0 and counts.fn == 0
        assert counts.f1 == 1.0

    def test_missing_reduce_lowers_recall(self, pi_source):
        predicted = "\n".join(l for l in pi_source.splitlines() if "MPI_Reduce" not in l)
        counts = evaluate_program(predicted, pi_source)
        assert counts.fn == 1
        assert counts.recall < 1.0
        assert counts.precision == 1.0

    def test_shifted_by_many_lines_fails(self, pi_source):
        predicted = ("\n" * 5) + pi_source
        counts = evaluate_program(predicted, pi_source)
        assert counts.tp == 0
