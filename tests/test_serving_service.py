"""InferenceService: correctness vs. the direct assistant, caching, metrics."""

from __future__ import annotations

import pytest

from repro.model.generation import GenerationConfig
from repro.mpirical import MPIAssistant
from repro.serving import InferenceService

#: Short decodes keep the serving tests fast; correctness is unaffected
#: because the direct-comparison path uses the same settings.
FAST = GenerationConfig(max_length=60)


@pytest.fixture(scope="module")
def service(tiny_model):
    with InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                          num_workers=2, cache_capacity=64,
                          generation=FAST) as svc:
        yield svc


@pytest.fixture(scope="module")
def direct_assistant(tiny_model):
    return MPIAssistant(tiny_model)


def _direct_session(assistant, source, generation=FAST):
    # Mirror the service's decode settings so sessions are comparable.
    from repro.clang.parser import parse_source_with_diagnostics
    from repro.mpirical import build_advice_session

    from repro.xsbt.xsbt import xsbt_string

    unit, diagnostics = parse_source_with_diagnostics(source)
    result = assistant.mpirical.predict_code(source, xsbt_string(unit),
                                             generation=generation)
    return build_advice_session(diagnostics, result)


def test_served_session_matches_direct_advise(service, direct_assistant, pi_source):
    served = service.advise(pi_source, timeout=120)
    assert served.session == _direct_session(direct_assistant, pi_source)
    assert served.latency_ms >= 0
    assert served.cache_key


def test_second_identical_request_hits_the_cache(service, pi_source):
    before = service.metrics()["cache_hits"]
    first = service.advise(pi_source, timeout=120)
    again = service.advise(pi_source, timeout=120)
    assert again.cached
    assert again.session == first.session
    assert service.metrics()["cache_hits"] >= before + 1


def test_reformatted_buffer_hits_the_cache(service, direct_assistant, pi_source):
    """Canonical keying: cosmetic edits must not cost another decode."""
    service.advise(pi_source, timeout=120)
    reformatted = "// reviewed\n" + pi_source.replace("    ", "\t")
    served = service.advise(reformatted, timeout=120)
    assert served.cached
    # The hit must be anchored to the *requesting* buffer: identical to what
    # a fresh advise on the reformatted text would produce.
    assert served.session == _direct_session(direct_assistant, reformatted)


def test_cache_hits_reanchor_advice_to_the_requesting_buffer():
    """A layout-shifting edit moves suggestion anchors, not just cache keys."""
    from repro.mpirical.pipeline import PredictionResult
    from repro.serving.service import anchor_result

    generated = ("int main(int argc, char **argv) {\n"
                 "    MPI_Init(&argc, &argv);\n"
                 "    return 0;\n"
                 "}\n")
    original = "int main(int argc, char **argv) {\n    return 0;\n}\n"
    shifted = "// reviewed, looks good\n" + original   # same canonical form

    cached = PredictionResult(generated_code=generated, generated_tokens=[])
    anchor_original = anchor_result(original, cached).suggestions[0].insert_after_line
    anchor_shifted = anchor_result(shifted, cached).suggestions[0].insert_after_line
    assert anchor_shifted == anchor_original + 1


def test_concurrent_requests_are_batched_and_correct(service, direct_assistant,
                                                     small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:6]]
    futures = [service.advise_async(src) for src in sources]
    served = [future.result(timeout=120) for future in futures]
    for source, response in zip(sources, served):
        assert response.session == _direct_session(direct_assistant, source)

    snapshot = service.metrics()
    assert snapshot["batches_total"] >= 1
    assert snapshot["requests_total"] >= len(sources)
    assert sum(snapshot["batch_size_histogram"].values()) == snapshot["batches_total"]
    assert snapshot["latency_ms_p95"] >= snapshot["latency_ms_p50"] >= 0
    assert snapshot["cache"]["capacity"] == 64
    assert snapshot["errors_total"] == 0


def test_metrics_hit_rate_consistency(service):
    snapshot = service.metrics()
    assert snapshot["cache_hits"] + snapshot["cache_misses"] == snapshot["requests_total"]
    if snapshot["requests_total"]:
        expected = snapshot["cache_hits"] / snapshot["requests_total"]
        assert snapshot["cache_hit_rate"] == pytest.approx(expected)


def test_decode_latency_is_recorded_per_decoded_request(service):
    """Every cache miss rides exactly one batched decode, and that decode's
    wall time is sampled per request (``decode_latency_ms_*``); cache hits
    never add decode samples."""
    fresh = "int main() { int decode_latency_probe = 7; return decode_latency_probe; }"
    assert not service.advise(fresh, timeout=120).cached  # guaranteed miss
    snapshot = service.metrics()
    assert snapshot["decode_latency_window"] == snapshot["cache_misses"] >= 1
    assert (snapshot["decode_latency_ms_p95"]
            >= snapshot["decode_latency_ms_p50"] > 0)
    # Decode time is part of (so bounded by) the end-to-end window max.
    assert snapshot["decode_latency_ms_p50"] <= snapshot["latency_ms_max"]
    before = snapshot["decode_latency_window"]
    assert service.advise(fresh, timeout=120).cached  # warm replay
    assert service.metrics()["decode_latency_window"] == before


def test_beam_request_matches_direct_beam_predict(service, direct_assistant,
                                                  pi_source):
    """A beam_size override decodes through the batched beam path and matches
    a direct per-example beam predict bit-for-bit."""
    served = service.advise(pi_source, beam_size=2, length_penalty=0.6,
                            timeout=120)
    beam_config = GenerationConfig(max_length=FAST.max_length, beam_size=2,
                                   length_penalty=0.6)
    assert served.session == _direct_session(direct_assistant, pi_source,
                                             beam_config)
    assert served.generation.beam_size == 2
    assert served.generation.length_penalty == 0.6


def test_beam_and_greedy_requests_use_separate_cache_entries(service, pi_source):
    greedy = service.advise(pi_source, timeout=120)
    beam_first = service.advise(pi_source, beam_size=3, timeout=120)
    assert beam_first.cache_key != greedy.cache_key
    beam_again = service.advise(pi_source, beam_size=3, timeout=120)
    assert beam_again.cached
    assert beam_again.session == beam_first.session


def test_metrics_report_batches_per_generation_config(service, pi_source,
                                                      small_dataset):
    source = small_dataset.splits.test[6].source_code
    service.advise(source, timeout=120)                 # greedy miss
    service.advise(source, beam_size=2, timeout=120)    # beam miss
    snapshot = service.metrics()
    by_config = snapshot["batches_by_config"]
    assert "greedy" in by_config
    assert any(label.startswith("beam2") for label in by_config)
    assert sum(entry["batches"] for entry in by_config.values()) == \
        snapshot["batches_total"]


def test_per_config_metric_cardinality_is_bounded():
    """A client sweeping length penalties must not grow /metrics forever."""
    from repro.serving import ServingMetrics

    metrics = ServingMetrics()
    for n in range(ServingMetrics.MAX_CONFIG_LABELS + 20):
        metrics.record_batch(1, group=f"beam4:lp0.{n:04d}")
    by_config = metrics.snapshot()["batches_by_config"]
    assert len(by_config) <= ServingMetrics.MAX_CONFIG_LABELS + 1
    assert by_config["other"]["batches"] == 20
    # Already-known labels keep accumulating under their own key.
    metrics.record_batch(3, group="beam4:lp0.0000")
    assert metrics.snapshot()["batches_by_config"]["beam4:lp0.0000"]["batches"] == 2


def test_invalid_generation_overrides_are_rejected(service, pi_source):
    with pytest.raises(ValueError, match="beam_size"):
        service.advise(pi_source, beam_size=0, timeout=120)
    with pytest.raises(ValueError, match="length_penalty"):
        service.advise(pi_source, length_penalty=-0.5, timeout=120)
    # Non-finite penalties would poison the beam ranking and the cache key.
    with pytest.raises(ValueError, match="length_penalty"):
        service.advise(pi_source, length_penalty=float("nan"), timeout=120)
    with pytest.raises(ValueError, match="length_penalty"):
        service.advise(pi_source, length_penalty=float("inf"), timeout=120)


def test_generation_label_distinguishes_every_cached_penalty():
    """The batch-group label must be as fine-grained as the cache key: two
    penalties that cache separately must never share a decode batch."""
    from repro.serving import generation_label

    a = GenerationConfig(beam_size=4, length_penalty=0.6)
    b = GenerationConfig(beam_size=4, length_penalty=0.6000001)
    assert generation_label(a) != generation_label(b)
    assert generation_label(GenerationConfig(beam_size=1, length_penalty=0.9)) \
        == generation_label(GenerationConfig(beam_size=1)) == "greedy"


def test_abandoned_stream_still_populates_the_cache(service):
    """A streaming client that disconnects mid-stream must not waste the
    decode: the worker caches the completed result, so a retry replays."""
    import time as time_module

    from repro.api import AdviseRequest

    from repro.serving.cache import canonical_cache_key

    source = "int main() { int abandoned_stream_probe = 9; return 0; }"
    stream = service.advise_stream(AdviseRequest(code=source))
    first = next(stream)          # start the decode, take one chunk ...
    assert first["type"] in ("token", "final")
    del stream                    # ... then abandon the generator (disconnect)

    # The stream's greedy cache identity — keys embed the model@revision
    # that served the request, so derive it from the service's registry.
    key = canonical_cache_key(source,
                              model=service.registry.default_identity())
    deadline = time_module.time() + 60
    while time_module.time() < deadline and key not in service.cache:
        time_module.sleep(0.05)
    assert key in service.cache, \
        "decode result of an abandoned stream was discarded"
    assert service.advise(source, timeout=120).cached


def test_cache_disabled_service_always_decodes(tiny_model, pi_source):
    with InferenceService(tiny_model, max_batch_size=2, max_wait_ms=2,
                          cache_capacity=0, generation=FAST) as svc:
        assert svc.cache is None
        first = svc.advise(pi_source, timeout=120)
        second = svc.advise(pi_source, timeout=120)
        assert not first.cached and not second.cached
        assert first.session == second.session
        assert svc.metrics()["cache"] == {"enabled": False}


def test_close_is_idempotent(tiny_model):
    svc = InferenceService(tiny_model, cache_capacity=4, generation=FAST)
    svc.close()
    svc.close()
