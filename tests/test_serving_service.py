"""InferenceService: correctness vs. the direct assistant, caching, metrics."""

from __future__ import annotations

import pytest

from repro.model.generation import GenerationConfig
from repro.mpirical import MPIAssistant
from repro.serving import InferenceService

#: Short decodes keep the serving tests fast; correctness is unaffected
#: because the direct-comparison path uses the same settings.
FAST = GenerationConfig(max_length=60)


@pytest.fixture(scope="module")
def service(tiny_model):
    with InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                          num_workers=2, cache_capacity=64,
                          generation=FAST) as svc:
        yield svc


@pytest.fixture(scope="module")
def direct_assistant(tiny_model):
    return MPIAssistant(tiny_model)


def _direct_session(assistant, source):
    # Mirror the service's decode settings so sessions are comparable.
    from repro.clang.parser import parse_source_with_diagnostics
    from repro.mpirical import build_advice_session

    from repro.xsbt.xsbt import xsbt_string

    unit, diagnostics = parse_source_with_diagnostics(source)
    result = assistant.mpirical.predict_code(source, xsbt_string(unit),
                                             generation=FAST)
    return build_advice_session(diagnostics, result)


def test_served_session_matches_direct_advise(service, direct_assistant, pi_source):
    served = service.advise(pi_source, timeout=120)
    assert served.session == _direct_session(direct_assistant, pi_source)
    assert served.latency_ms >= 0
    assert served.cache_key


def test_second_identical_request_hits_the_cache(service, pi_source):
    before = service.metrics()["cache_hits"]
    first = service.advise(pi_source, timeout=120)
    again = service.advise(pi_source, timeout=120)
    assert again.cached
    assert again.session == first.session
    assert service.metrics()["cache_hits"] >= before + 1


def test_reformatted_buffer_hits_the_cache(service, direct_assistant, pi_source):
    """Canonical keying: cosmetic edits must not cost another decode."""
    service.advise(pi_source, timeout=120)
    reformatted = "// reviewed\n" + pi_source.replace("    ", "\t")
    served = service.advise(reformatted, timeout=120)
    assert served.cached
    # The hit must be anchored to the *requesting* buffer: identical to what
    # a fresh advise on the reformatted text would produce.
    assert served.session == _direct_session(direct_assistant, reformatted)


def test_cache_hits_reanchor_advice_to_the_requesting_buffer():
    """A layout-shifting edit moves suggestion anchors, not just cache keys."""
    from repro.mpirical.pipeline import PredictionResult
    from repro.serving.service import anchor_result

    generated = ("int main(int argc, char **argv) {\n"
                 "    MPI_Init(&argc, &argv);\n"
                 "    return 0;\n"
                 "}\n")
    original = "int main(int argc, char **argv) {\n    return 0;\n}\n"
    shifted = "// reviewed, looks good\n" + original   # same canonical form

    cached = PredictionResult(generated_code=generated, generated_tokens=[])
    anchor_original = anchor_result(original, cached).suggestions[0].insert_after_line
    anchor_shifted = anchor_result(shifted, cached).suggestions[0].insert_after_line
    assert anchor_shifted == anchor_original + 1


def test_concurrent_requests_are_batched_and_correct(service, direct_assistant,
                                                     small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:6]]
    futures = [service.advise_async(src) for src in sources]
    served = [future.result(timeout=120) for future in futures]
    for source, response in zip(sources, served):
        assert response.session == _direct_session(direct_assistant, source)

    snapshot = service.metrics()
    assert snapshot["batches_total"] >= 1
    assert snapshot["requests_total"] >= len(sources)
    assert sum(snapshot["batch_size_histogram"].values()) == snapshot["batches_total"]
    assert snapshot["latency_ms_p95"] >= snapshot["latency_ms_p50"] >= 0
    assert snapshot["cache"]["capacity"] == 64
    assert snapshot["errors_total"] == 0


def test_metrics_hit_rate_consistency(service):
    snapshot = service.metrics()
    assert snapshot["cache_hits"] + snapshot["cache_misses"] == snapshot["requests_total"]
    if snapshot["requests_total"]:
        expected = snapshot["cache_hits"] / snapshot["requests_total"]
        assert snapshot["cache_hit_rate"] == pytest.approx(expected)


def test_cache_disabled_service_always_decodes(tiny_model, pi_source):
    with InferenceService(tiny_model, max_batch_size=2, max_wait_ms=2,
                          cache_capacity=0, generation=FAST) as svc:
        assert svc.cache is None
        first = svc.advise(pi_source, timeout=120)
        second = svc.advise(pi_source, timeout=120)
        assert not first.cached and not second.cached
        assert first.session == second.session
        assert svc.metrics()["cache"] == {"enabled": False}


def test_close_is_idempotent(tiny_model):
    svc = InferenceService(tiny_model, cache_capacity=4, generation=FAST)
    svc.close()
    svc.close()
