"""Edge-matrix tests for :mod:`repro.mpisim.validate`.

One test per failure mode the verifier must distinguish — parse failure,
runtime error, deadlock timeout (with rank + blocked-call attribution),
numerical-predicate false — plus a rank sweep of a real benchmark program.
"""

from __future__ import annotations

import pytest

from repro.benchprograms import program_by_name
from repro.benchprograms.references import check_for
from repro.mpisim import run_failure_message, run_program, validate_program
from repro.mpisim.runtime import RunResult, RankResult

PI_RIEMANN = program_by_name("Pi Riemann Sum")


def test_parse_failure() -> None:
    result = validate_program("int main( {", num_ranks=2)
    assert not result.parses
    assert not result.runs
    assert not result.valid
    assert result.check_passed is None
    assert result.message == "program does not parse cleanly"


def test_runtime_error() -> None:
    source = """
#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    double *p = NULL;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    double x = p[3];
    printf("%f\\n", x);
    MPI_Finalize();
    return 0;
}
"""
    result = validate_program(source, num_ranks=2, timeout=5.0)
    assert result.parses
    assert not result.runs
    assert not result.valid
    assert result.message
    assert "rank" in result.message


def test_deadlock_timeout_names_rank_and_call() -> None:
    source = """
#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    double x = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
        MPI_Recv(&x, 1, MPI_DOUBLE, 1, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Finalize();
    return 0;
}
"""
    result = validate_program(source, num_ranks=2, timeout=1.0)
    assert result.parses
    assert not result.runs
    assert "rank 0" in result.message
    assert "rank 1" in result.message and "tag 7" in result.message
    blocked = result.run_result.ranks[0]
    assert blocked.blocked_in == "MPI_Recv(source=1, tag=7)"
    assert result.run_result.ranks[1].blocked_in is None


def test_collective_deadlock_names_blocked_call() -> None:
    source = """
#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size;
    double local = 1.0;
    double total = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (rank < size - 1) {
        MPI_Reduce(&local, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    }
    MPI_Finalize();
    return 0;
}
"""
    result = validate_program(source, num_ranks=2, timeout=1.0)
    assert not result.runs
    assert "MPI_Reduce" in result.message
    assert "not all 2 ranks reached the call" in result.message
    assert result.run_result.ranks[0].blocked_in == "MPI_Reduce(root=0)"


def test_numerical_predicate_false() -> None:
    result = validate_program(PI_RIEMANN.source, num_ranks=4,
                              check=lambda out: False, timeout=10.0)
    assert result.parses
    assert result.runs
    assert result.check_passed is False
    assert not result.valid
    assert result.message == "numerical check failed"


@pytest.mark.parametrize("num_ranks", [1, 2, 4])
def test_rank_sweep_benchprogram(num_ranks: int) -> None:
    check = check_for(PI_RIEMANN.name).check
    result = validate_program(PI_RIEMANN.source, num_ranks=num_ranks,
                              check=check, timeout=15.0)
    assert result.valid, result.message


def test_run_failure_message_never_empty() -> None:
    run = RunResult(num_ranks=1, ranks=[RankResult(rank=0)])
    assert run_failure_message(run) == "run failed with no per-rank detail"
    run.ranks[0].exit_code = 3
    assert run_failure_message(run) == "rank 0: non-zero exit code 3"
    run.ranks.append(RankResult(rank=1, error="boom"))
    assert run_failure_message(run) == "rank 1: boom; rank 0: non-zero exit code 3"


def test_partial_stdout_preserved_on_deadlock() -> None:
    source = """
#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    double x = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    printf("rank %d alive\\n", rank);
    if (rank == 0) {
        MPI_Recv(&x, 1, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    MPI_Finalize();
    return 0;
}
"""
    run = run_program(source, num_ranks=2, timeout=1.0)
    assert not run.ok
    assert "rank 0 alive" in run.ranks[0].stdout
