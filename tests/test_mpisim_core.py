"""Tests for the simulated MPI runtime: memory model, communicator, collectives."""

import threading

import pytest

from repro.mpisim.comm import MessageBox, SimulationDeadlock, SplitRegistry, make_world
from repro.mpisim.datatypes import MPI_MAX, MPI_MIN, MPI_PROD, MPI_SUM
from repro.mpisim.memory import Cell, Pointer, Scope, read_buffer, write_buffer


class TestMemoryModel:
    def test_cell_and_pointer(self):
        cell = Cell(5)
        pointer = Pointer(cell)
        assert pointer.deref() == 5
        pointer.store(9)
        assert cell.value == 9

    def test_pointer_into_list(self):
        data = [1, 2, 3, 4]
        pointer = Pointer(data, 1)
        assert pointer.deref() == 2
        assert pointer.index(2) == 4
        pointer.store_index(0, 7)
        assert data[1] == 7
        shifted = pointer.shifted(2)
        assert shifted.deref() == 4

    def test_scope_chain(self):
        outer = Scope()
        outer.declare("x", 1)
        inner = outer.child()
        inner.declare("y", 2)
        assert inner.lookup("x").value == 1
        assert inner.lookup("y").value == 2
        assert outer.lookup("y") is None

    def test_read_buffer_variants(self):
        assert read_buffer([1, 2, 3], 2) == [1, 2]
        assert read_buffer(Pointer([1, 2, 3], 1), 2) == [2, 3]
        assert read_buffer(Pointer(Cell(5.0)), 1) == [5.0]
        assert read_buffer(Cell([7, 8]), 2) == [7, 8]

    def test_write_buffer_variants(self):
        data = [0, 0, 0]
        write_buffer(data, [1, 2])
        assert data == [1, 2, 0]
        cell = Cell(0)
        write_buffer(Pointer(cell), [9])
        assert cell.value == 9
        backing = [0, 0, 0, 0]
        write_buffer(Pointer(backing, 2), [5, 6])
        assert backing == [0, 0, 5, 6]


def _run_ranks(fn, size):
    """Run ``fn(rank, comm)`` on ``size`` communicators in threads and return results."""
    comms = make_world(size, timeout=10.0)
    results = [None] * size
    errors = []

    def worker(rank):
        try:
            results[rank] = fn(rank, comms[rank])
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15)
    assert not errors, errors
    return results


class TestCommunicator:
    def test_send_recv(self):
        def body(rank, comm):
            if rank == 0:
                comm.send([42.0], dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        results = _run_ranks(body, 2)
        assert results[1] == [42.0]

    def test_bcast(self):
        def body(rank, comm):
            payload = [1, 2, 3] if rank == 0 else None
            return comm.bcast(payload, root=0)

        assert all(r == [1, 2, 3] for r in _run_ranks(body, 4))

    def test_reduce_sum_and_prod(self):
        def body(rank, comm):
            return comm.reduce([rank + 1.0], MPI_SUM, root=0)

        results = _run_ranks(body, 4)
        assert results[0] == [10.0]
        assert results[1] is None

        def body_prod(rank, comm):
            return comm.reduce([rank + 1.0], MPI_PROD, root=0)

        assert _run_ranks(body_prod, 4)[0] == [24.0]

    def test_allreduce_min_max(self):
        def body(rank, comm):
            low = comm.allreduce([float(rank)], MPI_MIN)
            high = comm.allreduce([float(rank)], MPI_MAX)
            return low + high

        for result in _run_ranks(body, 4):
            assert result == [0.0, 3.0]

    def test_scatter_gather_roundtrip(self):
        def body(rank, comm):
            data = list(range(8)) if rank == 0 else None
            chunk = comm.scatter(data, count=2, root=0)
            gathered = comm.gather(chunk, root=0)
            return gathered

        results = _run_ranks(body, 4)
        assert results[0] == list(range(8))

    def test_allgather_and_alltoall(self):
        def body(rank, comm):
            gathered = comm.allgather([rank])
            transposed = comm.alltoall([rank * 10 + i for i in range(4)], count=1)
            return gathered, transposed

        results = _run_ranks(body, 4)
        for rank, (gathered, transposed) in enumerate(results):
            assert gathered == [0, 1, 2, 3]
            assert transposed == [rank, 10 + rank, 20 + rank, 30 + rank]

    def test_scan_prefix(self):
        def body(rank, comm):
            return comm.scan([1.0], MPI_SUM)

        results = _run_ranks(body, 4)
        assert [r[0] for r in results] == [1.0, 2.0, 3.0, 4.0]

    def test_comm_split_reduces_within_color(self):
        registry = SplitRegistry(timeout=10.0)

        def body(rank, comm):
            child = comm.split(color=rank % 2, key=rank, split_registry=registry)
            return child.allreduce([1.0], MPI_SUM), child.size

        results = _run_ranks(body, 4)
        for total, size in results:
            assert total == [2.0]
            assert size == 2

    def test_recv_timeout_raises_deadlock(self):
        box = MessageBox(timeout=0.2)
        with pytest.raises(SimulationDeadlock):
            box.recv(source=0, dest=1, tag=0)

    def test_barrier_synchronises(self):
        def body(rank, comm):
            comm.barrier()
            return True

        assert all(_run_ranks(body, 4))
