"""Golden-file contract smoke: boot the server, replay requests, diff JSON.

Each file under ``tests/golden/api_v1/`` is one case:
``{"request": {"path", "body", "method"?}, "expect": {...}}`` (``method``
defaults to POST; GET cases omit the body).  The harness boots the real HTTP
server on an ephemeral port, replays every golden request and diffs the
response against the checked-in expectation.  Model-dependent fields are
checked-in as the sentinel ``"<volatile>"`` and masked in the actual
response before the diff — everything else (status, envelope, echoed
strategy, key set and order) must match **exactly**, so any contract drift
shows up as a golden diff rather than a client breakage.

Cases run in sorted filename order against one shared server, which the
lifecycle cases lean on: ``batch_submit`` (alphabetically first) creates the
deterministic ``job-1`` that ``job_poll`` later polls —
``expect.poll_until_status`` re-issues the request until the response's
``status`` field reaches the given value, making the job body deterministic.

This is the CI "contract smoke" step (it also runs in tier-1).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.model.generation import GenerationConfig
from repro.serving import InferenceService
from repro.serving.server import make_server

GOLDEN_DIR = Path(__file__).parent / "golden" / "api_v1"
VOLATILE = "<volatile>"

CASES = sorted(GOLDEN_DIR.glob("*.json"))


@pytest.fixture(scope="module")
def endpoint(tiny_model):
    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               cache_capacity=64,
                               generation=GenerationConfig(max_length=60))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _replay(endpoint: str, spec: dict) -> tuple[int, bytes]:
    """Issue one golden request (POST with a JSON body, or a bare GET)."""
    url = f"{endpoint}{spec['path']}"
    if spec.get("method", "POST") == "GET":
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(spec.get("body", {})).encode(),
            headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _masked(actual, expected):
    """``actual`` with every position golden marks ``"<volatile>"`` replaced
    by the sentinel, recursively — so the diff covers exactly the stable
    surface."""
    if expected == VOLATILE:
        return VOLATILE
    if isinstance(expected, dict) and isinstance(actual, dict):
        return {key: _masked(value, expected[key]) if key in expected else value
                for key, value in actual.items()}
    return actual


@pytest.mark.parametrize("case_path", CASES, ids=lambda p: p.stem)
def test_golden_api_v1(endpoint, case_path):
    case = json.loads(case_path.read_text())
    request, expect = case["request"], case["expect"]
    status, raw = _replay(endpoint, request)
    poll_status = expect.get("poll_until_status")
    if poll_status is not None:
        deadline = time.monotonic() + 120
        while (json.loads(raw).get("status") != poll_status
               and time.monotonic() < deadline):
            time.sleep(0.05)
            status, raw = _replay(endpoint, request)
    assert status == expect["status"], raw

    if "final_response" in expect:  # a streaming case: NDJSON lines
        lines = [json.loads(line) for line in raw.splitlines() if line]
        final = lines[-1]
        assert final["type"] == "final"
        tokens = lines[:-1]
        assert all(chunk["type"] == "token" for chunk in tokens)
        assert len(tokens) >= expect["min_token_chunks"]
        actual = _masked(final["response"], expect["final_response"])
        assert actual == expect["final_response"]
        # Key order is part of the contract too.
        assert list(actual) == list(expect["final_response"])
    else:
        body = json.loads(raw)
        actual = _masked(body, expect["response"])
        assert actual == expect["response"]
        assert list(actual) == list(expect["response"])


def test_golden_directory_covers_the_required_cases():
    """ISSUE 4 + 5 + 7 satellites: the advise strategies, two malformed
    bodies, the model-lifecycle surface (models/swap/batch/jobs/unknown-model)
    and the durable-job error envelopes (never-issued job id)."""
    stems = {path.stem for path in CASES}
    assert {"greedy", "beam", "sample", "stream"} <= stems
    assert {"models_list", "swap", "batch_submit", "job_poll",
            "job_unknown", "unknown_model"} <= stems
    assert len([s for s in stems if s.startswith("malformed")]) >= 2
    # PR 9: the v1.2 verification surface — one response carrying a full
    # verification object and one explicitly skipped.
    assert {"verify_advise", "verify_skipped"} <= stems
