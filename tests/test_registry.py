"""Model registry + checkpoint manifest: revisions, aliases, leases, errors."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.model.checkpoints import (
    CheckpointError,
    checkpoint_revision,
    load_checkpoint,
    read_manifest,
)
from repro.mpirical import MPIRical
from repro.registry import (
    DEFAULT_ALIAS,
    ModelRegistry,
    RegistryError,
    split_model_spec,
)


@pytest.fixture(scope="module")
def checkpoint(tiny_model, tmp_path_factory):
    """The tiny model saved once for the whole module."""
    return tiny_model.save(tmp_path_factory.mktemp("registry") / "ckpt")


def _variant_of(checkpoint_path, *, delta: float = 0.25):
    """A genuinely different revision: same architecture, perturbed weights."""
    variant = MPIRical.load(checkpoint_path)
    first = variant.model.parameters()[0]
    first.data[...] = first.data + delta
    first.mark_updated()
    return variant


# --------------------------------------------------------- checkpoint manifest


class TestCheckpointManifest:
    def test_save_writes_manifest_and_experiment_config(self, tiny_model,
                                                        checkpoint):
        manifest = read_manifest(checkpoint)
        assert manifest is not None
        params = tiny_model.model.parameters()
        assert manifest.param_count == len(params)
        assert manifest.total_parameters == sum(p.data.size for p in params)
        assert manifest.revision == tiny_model.fingerprint()
        assert checkpoint_revision(checkpoint) == manifest.revision
        # The full experiment config rides along, so load() restores the
        # exact sequence limits without an explicit config argument.
        experiment = json.loads((checkpoint / "experiment.json").read_text())
        assert experiment["max_source_tokens"] == \
            tiny_model.config.max_source_tokens

    def test_load_without_config_restores_sequence_limits(self, tiny_model,
                                                          checkpoint):
        restored = MPIRical.load(checkpoint)
        assert restored.config.max_source_tokens == \
            tiny_model.config.max_source_tokens
        assert restored.config.max_target_tokens == \
            tiny_model.config.max_target_tokens
        assert restored.fingerprint() == tiny_model.fingerprint()

    def test_fingerprint_tracks_weight_changes(self, checkpoint, tmp_path):
        variant = _variant_of(checkpoint)
        original = MPIRical.load(checkpoint)
        assert variant.fingerprint() != original.fingerprint()
        saved = variant.save(tmp_path / "variant")
        assert checkpoint_revision(saved) == variant.fingerprint()

    def test_missing_directory_is_immediate_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope")

    def test_mismatched_config_fails_before_loading_weights(self, tiny_model,
                                                            tmp_path):
        path = tiny_model.save(tmp_path / "tampered-config")
        config = json.loads((path / "config.json").read_text())
        config["d_model"] = config["d_model"] * 2
        (path / "config.json").write_text(json.dumps(config))
        with pytest.raises(CheckpointError, match="manifest"):
            load_checkpoint(path)

    def test_replaced_vocab_is_detected(self, tiny_model, tmp_path):
        path = tiny_model.save(tmp_path / "tampered-vocab")
        vocab = json.loads((path / "vocab.json").read_text())
        vocab["tokens"] = list(vocab["tokens"]) + ["smuggled_token"]
        (path / "vocab.json").write_text(json.dumps(vocab))
        with pytest.raises(CheckpointError, match="vocab"):
            load_checkpoint(path)

    def test_corrupted_weights_fail_the_revision_check(self, tiny_model,
                                                       tmp_path):
        path = tiny_model.save(tmp_path / "tampered-weights")
        with np.load(path / "weights.npz") as data:
            arrays = {name: data[name].copy() for name in data.files}
        first = sorted(arrays)[0]
        arrays[first] = arrays[first] + 1.0  # same shape, different content
        np.savez_compressed(path / "weights.npz", **arrays)
        with pytest.raises(CheckpointError, match="revision"):
            load_checkpoint(path)

    def test_pre_manifest_checkpoints_still_load(self, tiny_model, tmp_path):
        path = tiny_model.save(tmp_path / "legacy")
        (path / "manifest.json").unlink()
        model, vocab = load_checkpoint(path)
        assert len(model.parameters()) == len(tiny_model.model.parameters())


# ------------------------------------------------------------------- registry


class TestModelRegistry:
    def test_in_memory_and_checkpoint_entries_share_a_revision(
            self, tiny_model, checkpoint):
        registry = ModelRegistry(tiny_model, name="live")
        registry.register("from-disk", checkpoint)
        live = registry.resolve("live")
        disk = registry.resolve("from-disk")
        assert live.revision == disk.revision
        assert live.identity == f"live@{tiny_model.fingerprint()}"

    def test_checkpoint_entries_know_their_revision_before_loading(
            self, tiny_model, checkpoint):
        registry = ModelRegistry()
        entry = registry.register("lazy", checkpoint, make_default=True)
        assert not entry.loaded
        assert entry.revision == tiny_model.fingerprint()
        # resolve() loads lazily; the identity is unchanged by the load.
        assert registry.resolve(None) is entry
        assert entry.loaded

    def test_resolution_accepts_alias_name_and_pinned_revision(
            self, tiny_model):
        registry = ModelRegistry(tiny_model, name="advisor")
        identity = registry.resolve(None).identity
        assert registry.resolve("default").name == "advisor"   # alias
        assert registry.resolve("advisor").identity == identity  # name
        assert registry.resolve(identity).identity == identity   # name@rev
        assert split_model_spec(identity) == ("advisor",
                                              identity.split("@")[1])

    def test_unknown_and_stale_references_raise(self, tiny_model):
        registry = ModelRegistry(tiny_model, name="advisor")
        with pytest.raises(RegistryError, match="unknown model"):
            registry.resolve("missing")
        with pytest.raises(RegistryError, match="revision"):
            registry.resolve("advisor@000000000000")
        with pytest.raises(RegistryError):
            registry.register("elsewhere", "/no/such/checkpoint")

    def test_invalid_names_are_rejected(self, tiny_model):
        registry = ModelRegistry()
        for bad in ("", "a@b", "a/b"):
            with pytest.raises(ValueError, match="invalid model name"):
                registry.register(bad, tiny_model)

    def test_swap_flips_the_alias_atomically(self, tiny_model, checkpoint,
                                             tmp_path):
        registry = ModelRegistry(tiny_model, name="v1")
        variant = _variant_of(checkpoint)
        registry.register("v2", variant)
        previous, current = registry.swap("v2")
        assert previous.startswith("v1@")
        assert current == f"v2@{variant.fingerprint()}"
        assert registry.resolve(None).name == "v2"
        # The old entry is untouched: still registered, still loaded.
        assert registry.get("v1").loaded

    def test_reregistering_a_name_changes_its_revision(self, tiny_model,
                                                       checkpoint, tmp_path):
        registry = ModelRegistry(tiny_model, name="advisor")
        old = registry.resolve("advisor")
        variant = _variant_of(checkpoint)
        registry.register("advisor", variant)
        new = registry.resolve("advisor")
        assert new is not old
        assert new.revision != old.revision

    def test_unload_is_lease_counted(self, checkpoint):
        registry = ModelRegistry()
        registry.register("advisor", checkpoint, make_default=True)
        entry = registry.resolve("advisor")
        entry.acquire()
        assert registry.unload("advisor") is False   # draining, not dropped
        assert entry.loaded                          # still serving its lease
        entry.release()
        assert not entry.loaded                      # last lease => unloaded
        # A later resolve transparently reloads from the checkpoint.
        assert registry.resolve("advisor").loaded

    def test_in_memory_entries_refuse_to_unload(self, tiny_model):
        registry = ModelRegistry(tiny_model)
        with pytest.raises(RegistryError, match="in-memory"):
            registry.unload("default")

    def test_snapshot_reports_default_aliases_and_models(self, tiny_model,
                                                         checkpoint):
        registry = ModelRegistry(tiny_model, name="live")
        registry.register("cold", checkpoint)
        snapshot = registry.snapshot()
        assert snapshot["default"] == f"live@{tiny_model.fingerprint()}"
        assert snapshot["aliases"] == {DEFAULT_ALIAS: "live"}
        by_name = {model["name"]: model for model in snapshot["models"]}
        assert by_name["live"]["loaded"] is True
        assert by_name["live"]["source"] == "in-memory"
        assert by_name["cold"]["loaded"] is False
        assert by_name["cold"]["source"].endswith("ckpt")

    def test_warm_up_primes_without_changing_identity(self, tiny_model):
        registry = ModelRegistry(tiny_model, warm_up=True)
        entry = registry.resolve(None)
        assert entry.identity == f"default@{tiny_model.fingerprint()}"
