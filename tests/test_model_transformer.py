"""Tests for the seq2seq Transformer, loss, optimiser, trainer and decoding."""

import numpy as np
import pytest

from repro.model.autograd import Tensor
from repro.model.checkpoints import load_checkpoint, save_checkpoint
from repro.model.config import ModelConfig, TrainingConfig, paper_config, small_config, tiny_config
from repro.model.generation import beam_search_decode, greedy_decode
from repro.model.loss import cross_entropy, perplexity
from repro.model.optimizer import Adam, AdamConfig
from repro.model.trainer import Trainer
from repro.model.transformer import Seq2SeqTransformer
from repro.tokenization.code_tokenizer import EncodedExample
from repro.tokenization.vocab import Vocabulary


def _tiny_model(vocab_size=40):
    config = ModelConfig(vocab_size=vocab_size, d_model=32, num_heads=2,
                         num_encoder_layers=1, num_decoder_layers=1, ffn_dim=48,
                         dropout=0.0, seed=3)
    return Seq2SeqTransformer(config)


class TestConfig:
    def test_validate_requires_vocab(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=0).validate()

    def test_validate_head_divisibility(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=10, d_model=30, num_heads=4).validate()

    def test_presets_are_consistent(self):
        for preset in (paper_config(), small_config(), tiny_config()):
            assert preset.model.d_model % preset.model.num_heads == 0
            assert preset.training.epochs >= 1


class TestForward:
    def test_forward_logits_shape(self):
        model = _tiny_model()
        src = np.array([[4, 5, 6, 0]])
        tgt = np.array([[1, 7, 8]])
        logits = model.forward(src, tgt, pad_id=0)
        assert logits.shape == (1, 3, 40)

    def test_padding_does_not_change_unpadded_logits(self):
        model = _tiny_model()
        src = np.array([[4, 5, 6]])
        src_padded = np.array([[4, 5, 6, 0, 0]])
        tgt = np.array([[1, 7]])
        a = model.forward(src, tgt, pad_id=0).data
        b = model.forward(src_padded, tgt, pad_id=0).data
        assert np.allclose(a, b, atol=1e-8)

    def test_causality_future_target_does_not_affect_past(self):
        model = _tiny_model()
        src = np.array([[4, 5, 6]])
        tgt_a = np.array([[1, 7, 8, 9]])
        tgt_b = np.array([[1, 7, 30, 31]])  # differs only after position 1
        logits_a = model.forward(src, tgt_a, pad_id=0).data
        logits_b = model.forward(src, tgt_b, pad_id=0).data
        assert np.allclose(logits_a[:, :2], logits_b[:, :2], atol=1e-9)

    def test_parameter_count_positive(self):
        model = _tiny_model()
        assert model.num_parameters() > 10_000


class TestLoss:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.zeros((1, 2, 4)))
        targets = np.array([[1, 2]])
        result = cross_entropy(logits, targets, pad_id=0)
        assert np.isclose(result.loss.data, np.log(4.0))

    def test_padding_excluded(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(1, 3, 5)))
        with_pad = cross_entropy(logits, np.array([[1, 2, 0]]), pad_id=0)
        without = cross_entropy(Tensor(logits.data[:, :2]), np.array([[1, 2]]), pad_id=0)
        assert np.isclose(with_pad.loss.data, without.loss.data)
        assert with_pad.num_tokens == 2

    def test_label_smoothing_increases_loss_for_confident_model(self):
        logits_data = np.full((1, 1, 4), -10.0)
        logits_data[0, 0, 2] = 10.0
        sharp = cross_entropy(Tensor(logits_data), np.array([[2]]), pad_id=0, label_smoothing=0.0)
        smooth = cross_entropy(Tensor(logits_data), np.array([[2]]), pad_id=0, label_smoothing=0.1)
        assert smooth.loss.data > sharp.loss.data

    def test_all_padding_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((1, 2, 3))), np.array([[0, 0]]), pad_id=0)

    def test_accuracy_computed(self):
        logits_data = np.zeros((1, 2, 4))
        logits_data[0, 0, 1] = 5.0
        logits_data[0, 1, 3] = 5.0
        result = cross_entropy(Tensor(logits_data), np.array([[1, 2]]), pad_id=0)
        assert np.isclose(result.token_accuracy, 0.5)

    def test_perplexity(self):
        assert np.isclose(perplexity(0.0), 1.0)
        assert perplexity(100.0) < np.inf


class TestOptimizer:
    def test_adam_reduces_quadratic_loss(self):
        from repro.model.autograd import parameter

        x = parameter(np.array([5.0, -3.0]))
        optimizer = Adam([x], AdamConfig(learning_rate=0.1))
        for _ in range(200):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        assert np.all(np.abs(x.data) < 0.1)

    def test_warmup_ramps_learning_rate(self):
        from repro.model.autograd import parameter

        optimizer = Adam([parameter(np.zeros(1))],
                         AdamConfig(learning_rate=1.0, warmup_steps=10))
        optimizer.step_count = 1
        assert optimizer.current_learning_rate() == pytest.approx(0.1)
        optimizer.step_count = 20
        assert optimizer.current_learning_rate() == pytest.approx(1.0)

    def test_gradient_clipping(self):
        from repro.model.autograd import parameter

        p = parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        optimizer = Adam([p], AdamConfig(gradient_clip=1.0))
        norm = optimizer.clip_gradients()
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)


class TestTrainerAndDecoding:
    def _copy_task_examples(self, n=12, length=10, vocab=30, seed=0):
        rng = np.random.default_rng(seed)
        examples = []
        for i in range(n):
            src = [int(v) for v in rng.integers(5, vocab - 1, size=length)]
            examples.append(EncodedExample(example_id=str(i), encoder_ids=src,
                                           decoder_ids=[1] + src + [2]))
        return examples

    def test_trainer_overfits_copy_task(self):
        examples = self._copy_task_examples()
        model = _tiny_model(vocab_size=30)
        trainer = Trainer(model, pad_id=0,
                          config=TrainingConfig(batch_size=4, epochs=25, learning_rate=3e-3,
                                                label_smoothing=0.0, warmup_steps=5, seed=1))
        history = trainer.fit(examples, examples)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
        assert history.epochs[-1].validation_accuracy > 0.9
        assert len(history.train_losses()) == 25

    def test_greedy_decode_reproduces_copy(self):
        examples = self._copy_task_examples(n=10, length=8)
        model = _tiny_model(vocab_size=30)
        trainer = Trainer(model, pad_id=0,
                          config=TrainingConfig(batch_size=5, epochs=30, learning_rate=3e-3,
                                                label_smoothing=0.0, warmup_steps=5, seed=2))
        trainer.fit(examples)
        decoded = greedy_decode(model, examples[0].encoder_ids, sos_id=1, eos_id=2,
                                pad_id=0, max_length=20)
        assert decoded == examples[0].encoder_ids

    def test_beam_search_at_least_as_likely_as_greedy(self):
        examples = self._copy_task_examples(n=8, length=6)
        model = _tiny_model(vocab_size=30)
        Trainer(model, pad_id=0,
                config=TrainingConfig(batch_size=4, epochs=20, learning_rate=3e-3,
                                      label_smoothing=0.0, seed=3)).fit(examples)
        greedy = greedy_decode(model, examples[1].encoder_ids, sos_id=1, eos_id=2, pad_id=0,
                               max_length=16)
        beam = beam_search_decode(model, examples[1].encoder_ids, sos_id=1, eos_id=2,
                                  pad_id=0, beam_size=2, max_length=16)
        assert beam == greedy or len(beam) > 0

    def test_max_steps_per_epoch_caps_work(self):
        examples = self._copy_task_examples(n=20)
        model = _tiny_model(vocab_size=30)
        trainer = Trainer(model, pad_id=0,
                          config=TrainingConfig(batch_size=2, epochs=1,
                                                max_steps_per_epoch=3, seed=4))
        history = trainer.fit(examples)
        assert history.epochs[0].steps == 3

    def test_evaluate_on_empty_returns_zero(self):
        model = _tiny_model()
        trainer = Trainer(model, pad_id=0, config=TrainingConfig(epochs=1))
        assert trainer.evaluate([]) == (0.0, 0.0)


class TestCheckpoints:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = _tiny_model(vocab_size=12)
        vocab = Vocabulary.build([["alpha", "beta", "gamma"]])
        save_checkpoint(tmp_path / "ckpt", model, vocab)
        restored_model, restored_vocab = load_checkpoint(tmp_path / "ckpt")
        assert restored_vocab.token_to_id == vocab.token_to_id
        for original, restored in zip(model.parameters(), restored_model.parameters()):
            assert np.allclose(original.data, restored.data)

    def test_restored_model_produces_identical_logits(self, tmp_path):
        model = _tiny_model(vocab_size=12)
        vocab = Vocabulary()
        save_checkpoint(tmp_path / "ckpt", model, vocab)
        restored, _ = load_checkpoint(tmp_path / "ckpt")
        src = np.array([[3, 4, 5]])
        tgt = np.array([[1, 6]])
        assert np.allclose(model.forward(src, tgt, 0).data,
                           restored.forward(src, tgt, 0).data)
