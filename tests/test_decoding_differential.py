"""Differential decoding harness: batched beam search ≡ sequential beam search.

The paper's headline numbers are produced with beam search, so the batched
implementation (:func:`beam_search_decode_batch`) must be *exact-match*
identical to the sequential reference (:func:`beam_search_decode`) — not
approximately, not up to tie-breaking.  Three layers of evidence:

* a **history-dependent stub model** whose next-token logits are a
  deterministic, tie-rich function of the row's own (un-padded) source, the
  step, and the *full fed-token history accumulated through a real KVCache*.
  Because the history lives in the cache, the batched path only matches if
  :meth:`DecoderLoop.reorder_rows` gathers cache rows correctly through every
  pruning step — and because the logits take small integer values, exact
  score ties abound, hammering the explicit candidate ordering;
* **degenerate stubs** steering into the corners: every row emits EOS at
  step 0, no row ever emits EOS (``max_length`` truncation mid-beam), and
  fully uniform logits (every candidate tied, so the output is decided by
  the documented ordering alone);
* the **real tiny Transformer**, where equality additionally proves that
  right-padding, the encoder/cross-attention padding masks and the repeated
  per-beam memory rows do not perturb the selected hypotheses.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.attention import KVCache
from repro.model.generation import (
    beam_search_decode,
    beam_search_decode_batch,
    greedy_decode,
    greedy_decode_batch,
)

PAD, SOS, EOS = 0, 1, 2
VOCAB = 13


class HistoryStubModel:
    """Deterministic decoder whose state lives in a real KV cache.

    ``decode_step`` appends the fed tokens to ``state.self_caches[0]`` (with
    the real cache layout: ``(rows, heads, steps, head_dim)``) and computes
    each row's logits from that row's non-pad source tokens, the step index
    and the *sum of every token ever fed to the row* — so a mis-gathered
    cache row after beam pruning changes the logits and breaks the
    differential immediately.  Logits take values in a small integer set,
    which makes exact score ties the common case rather than the corner one.
    """

    def __init__(self, vocab_size: int = VOCAB, *, eos_at_step0: bool = False,
                 never_eos: bool = False, uniform: bool = False) -> None:
        self.vocab_size = vocab_size
        self.eos_at_step0 = eos_at_step0
        self.never_eos = never_eos
        self.uniform = uniform

    def encode(self, source_ids: np.ndarray, pad_id: int, *, training: bool = False):
        return source_ids  # decode_step reads src directly; no memory needed

    def start_decoding(self):
        return SimpleNamespace(position=0, self_caches=[KVCache()], cross_caches=[])

    def decode_step(self, token_ids: np.ndarray, memory, source_ids: np.ndarray,
                    pad_id: int, state) -> np.ndarray:
        fed = token_ids[:, None, :, None].astype(np.float64)
        keys, _ = state.self_caches[0].append(fed, fed)
        history = keys[:, 0, :, 0].sum(axis=1)
        batch = source_ids.shape[0]
        logits = np.full((batch, self.vocab_size), -100.0)
        for row in range(batch):
            logits[row, 3:] = self._row_logits(source_ids[row], pad_id,
                                               int(history[row]), state.position)
            if self.eos_at_step0 and state.position == 0:
                logits[row, EOS] = 100.0
            elif not self.never_eos:
                logits[row, EOS] = logits[row, 3:].max() - float(
                    (int(history[row]) + state.position) % 3)
        state.position += 1
        return logits

    def _row_logits(self, source_row: np.ndarray, pad_id: int, history: int,
                    step: int) -> np.ndarray:
        if self.uniform:
            return np.zeros(self.vocab_size - 3)
        real = [int(t) for t in source_row if int(t) != pad_id]
        mix = len(real) * 3 + sum(real) + history * 5 + step * 2
        return np.array([(mix + v) % 4 for v in range(3, self.vocab_size)],
                        dtype=np.float64)


def sequential_beam(model_factory, sources, **kwargs):
    return [beam_search_decode(model_factory(), source, **kwargs)
            for source in sources]


DECODE = dict(sos_id=SOS, eos_id=EOS, pad_id=PAD)


@st.composite
def ragged_batches(draw):
    """Ragged source batches with empties and deliberate duplicates."""
    sources = draw(st.lists(
        st.lists(st.integers(min_value=3, max_value=VOCAB - 1),
                 min_size=0, max_size=8),
        min_size=0, max_size=7))
    if sources and draw(st.booleans()):
        sources.append(list(draw(st.sampled_from(sources))))
    return sources


# ------------------------------------------------------- property: beam ≡ beam


@settings(max_examples=60, deadline=None)
@given(sources=ragged_batches(),
       beam_size=st.integers(min_value=2, max_value=4),
       max_length=st.integers(min_value=1, max_value=10),
       length_penalty=st.sampled_from([0.0, 0.6, 1.0]))
def test_batched_beam_matches_sequential(sources, beam_size, max_length,
                                         length_penalty):
    kwargs = dict(DECODE, beam_size=beam_size, max_length=max_length,
                  length_penalty=length_penalty)
    expected = sequential_beam(HistoryStubModel, sources, **kwargs)
    batched = beam_search_decode_batch(HistoryStubModel(), sources, **kwargs)
    assert batched == expected


@settings(max_examples=40, deadline=None)
@given(sources=ragged_batches(), max_length=st.integers(min_value=1, max_value=10),
       length_penalty=st.sampled_from([0.0, 0.6]))
def test_beam_size_one_equals_greedy(sources, max_length, length_penalty):
    """beam_size=1 must delegate to greedy in both the batch and single paths."""
    via_beam = beam_search_decode_batch(HistoryStubModel(), sources, **DECODE,
                                        beam_size=1, max_length=max_length,
                                        length_penalty=length_penalty)
    via_greedy = greedy_decode_batch(HistoryStubModel(), sources, **DECODE,
                                     max_length=max_length)
    per_source = [greedy_decode(HistoryStubModel(), source, **DECODE,
                                max_length=max_length) for source in sources]
    assert via_beam == via_greedy == per_source


# ------------------------------------------------------- decoder-loop corners


def test_empty_source_inside_a_batch():
    sources = [[3, 4], [], [5, 6, 7], []]
    batched = beam_search_decode_batch(HistoryStubModel(), sources, **DECODE,
                                       beam_size=3, max_length=8)
    assert batched[1] == [] and batched[3] == []
    assert batched == sequential_beam(HistoryStubModel, sources, **DECODE,
                                      beam_size=3, max_length=8)


def test_batch_of_one_and_empty_batch():
    assert beam_search_decode_batch(HistoryStubModel(), [], **DECODE,
                                    beam_size=3) == []
    single = beam_search_decode_batch(HistoryStubModel(), [[4, 5, 6]], **DECODE,
                                      beam_size=3, max_length=8)
    assert single == [beam_search_decode(HistoryStubModel(), [4, 5, 6], **DECODE,
                                         beam_size=3, max_length=8)]


def test_all_rows_eos_at_step_zero():
    model = HistoryStubModel(eos_at_step0=True)
    sources = [[3], [4, 5], [6, 7, 8]]
    batched = beam_search_decode_batch(model, sources, **DECODE, beam_size=3,
                                       max_length=8)
    assert batched == [[], [], []]
    assert batched == sequential_beam(lambda: HistoryStubModel(eos_at_step0=True),
                                      sources, **DECODE, beam_size=3, max_length=8)


def test_max_length_truncates_mid_beam():
    """No hypothesis ever finishes: every beam is cut at exactly max_length."""
    kwargs = dict(DECODE, beam_size=3, max_length=5, length_penalty=0.6)
    sources = [[3, 4, 5], [6], [7, 8, 9, 10]]
    batched = beam_search_decode_batch(HistoryStubModel(never_eos=True),
                                       sources, **kwargs)
    assert all(len(out) == 5 for out in batched)
    assert EOS not in {token for out in batched for token in out}
    assert batched == sequential_beam(lambda: HistoryStubModel(never_eos=True),
                                      sources, **kwargs)


def test_tie_breaking_is_deterministic_across_runs():
    """Tie-rich logits, repeated runs on fresh models: bit-identical outputs."""
    sources = [[3, 4, 5], [6, 6], [7]]
    kwargs = dict(DECODE, beam_size=4, max_length=7, length_penalty=0.6)
    runs = [beam_search_decode_batch(HistoryStubModel(), sources, **kwargs)
            for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]
    sequential_runs = [sequential_beam(HistoryStubModel, sources, **kwargs)
                       for _ in range(3)]
    assert sequential_runs[0] == sequential_runs[1] == runs[0]


def test_exact_ties_resolve_to_the_lowest_token_id():
    """Uniform logits make *every* candidate tie; the documented order
    (score desc, then token id asc, then parent rank asc) must fully decide
    the result: the best hypothesis repeats the lowest generatable token."""
    kwargs = dict(DECODE, beam_size=3, max_length=4, length_penalty=0.0)
    model = HistoryStubModel(uniform=True, never_eos=True)
    out = beam_search_decode(model, [5, 6], **kwargs)
    assert out == [3, 3, 3, 3]
    batched = beam_search_decode_batch(HistoryStubModel(uniform=True,
                                                        never_eos=True),
                                       [[5, 6], [7]], **kwargs)
    assert batched == [[3, 3, 3, 3], [3, 3, 3, 3]]


# --------------------------------------------------------------- real model


@pytest.fixture(scope="module")
def beam_sources(small_dataset, pi_source):
    programs = [ex.source_code for ex in small_dataset.splits.test[:4]]
    return programs + [pi_source, "", programs[0]]


def test_real_model_beam_batch_matches_sequential(tiny_model, beam_sources):
    vocab = tiny_model.encoder.vocab
    encoded = [tiny_model.encoder.encode_source(src) for src in beam_sources]
    kwargs = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id, pad_id=vocab.pad_id,
                  beam_size=3, max_length=40, length_penalty=0.6)
    expected = [beam_search_decode(tiny_model.model, ids, **kwargs)
                for ids in encoded]
    batched = beam_search_decode_batch(tiny_model.model, encoded, **kwargs)
    assert batched == expected


def test_real_model_beam_batch_no_length_penalty(tiny_model, beam_sources):
    vocab = tiny_model.encoder.vocab
    encoded = [tiny_model.encoder.encode_source(src) for src in beam_sources[:4]]
    kwargs = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id, pad_id=vocab.pad_id,
                  beam_size=2, max_length=32, length_penalty=0.0)
    expected = [beam_search_decode(tiny_model.model, ids, **kwargs)
                for ids in encoded]
    assert beam_search_decode_batch(tiny_model.model, encoded, **kwargs) == expected


def test_pipeline_beam_batch_matches_per_example(tiny_model, beam_sources):
    """predict_code_batch with beam_size > 1 ≡ per-example predict_code."""
    from repro.model.generation import GenerationConfig

    generation = GenerationConfig(max_length=40, beam_size=3, length_penalty=0.6)
    batched = tiny_model.predict_code_batch(beam_sources, generation=generation)
    for source, result in zip(beam_sources, batched):
        single = tiny_model.predict_code(source, generation=generation)
        assert result.generated_tokens == single.generated_tokens
        assert result.generated_code == single.generated_code
        assert result.suggestions == single.suggestions


# ---------------------------------------- continuous batching ≡ sequential

from repro.model.decoding import (  # noqa: E402  (section-local imports)
    BeamStrategy,
    GreedyStrategy,
    SampleStrategy,
)
from repro.serving.sched import InflightBatch  # noqa: E402


class ContinuousHistoryStubModel(HistoryStubModel):
    """HistoryStubModel that also speaks the continuous decode protocol.

    When the state carries per-row ``positions`` (a
    :class:`ContinuousDecoderLoop` drives it), each row's step index is its
    *own* position — exactly how the real transformer's ragged decode path
    reads the positional table — so a row that joined at global step 40
    computes the same logits it would have computed alone at step 0.
    """

    def decode_step(self, token_ids, memory, source_ids, pad_id, state):
        positions = getattr(state, "positions", None)
        if positions is None:
            return super().decode_step(token_ids, memory, source_ids,
                                       pad_id, state)
        fed = token_ids[:, None, :, None].astype(np.float64)
        keys, _ = state.self_caches[0].append(fed, fed)
        history = keys[:, 0, :, 0].sum(axis=1)  # ragged zero tails drop out
        batch = source_ids.shape[0]
        logits = np.full((batch, self.vocab_size), -100.0)
        for row in range(batch):
            pos = int(positions[row])
            logits[row, 3:] = self._row_logits(source_ids[row], pad_id,
                                               int(history[row]), pos)
            if self.eos_at_step0 and pos == 0:
                logits[row, EOS] = 100.0
            elif not self.never_eos:
                logits[row, EOS] = logits[row, 3:].max() - float(
                    (int(history[row]) + pos) % 3)
        positions += token_ids.shape[1]
        return logits


class _Work:
    future = None


def continuous_decode(model, jobs, *, arrivals, max_rows, max_length):
    """Drive an :class:`InflightBatch` by hand: job ``i`` becomes eligible at
    global step ``arrivals[i]`` and joins FIFO as soon as its rows fit."""
    batch = InflightBatch(model, sos_id=SOS, eos_id=EOS, pad_id=PAD)
    pending = list(range(len(jobs)))
    states: list = [None] * len(jobs)
    step = 0
    while pending or batch.num_rows:
        while pending and arrivals[pending[0]] <= step:
            i = pending[0]
            source, strategy = jobs[i]
            state = strategy.row_state(sos_id=SOS, eos_id=EOS,
                                       max_length=max_length)
            if state.rows > batch.free_rows(max_rows):
                break
            pending.pop(0)
            batch.add(_Work(), state, source)
            states[i] = state
        if batch.num_rows:
            batch.step()
        step += 1
        assert step < 10_000, "continuous differential driver did not converge"
    return [state.result() for state in states]


STRATEGY_POOL = [
    GreedyStrategy(),
    BeamStrategy(beam_size=2, length_penalty=0.6),
    BeamStrategy(beam_size=3, length_penalty=0.0),
    SampleStrategy(temperature=0.9, top_k=5, seed=17),
    SampleStrategy(temperature=1.1, top_p=0.8, seed=4),
]


@st.composite
def continuous_jobs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    jobs = [(draw(st.lists(st.integers(min_value=3, max_value=VOCAB - 1),
                           min_size=1, max_size=8)),
             draw(st.sampled_from(STRATEGY_POOL)))
            for _ in range(n)]
    arrivals = sorted(draw(st.integers(min_value=0, max_value=6))
                      for _ in range(n))
    return jobs, arrivals


@settings(max_examples=40, deadline=None)
@given(spec=continuous_jobs(),
       max_rows=st.integers(min_value=2, max_value=5),
       max_length=st.integers(min_value=1, max_value=9))
def test_continuous_matches_sequential_on_stub(spec, max_rows, max_length):
    """Staggered joins/retires under a row-capacity limit never perturb any
    request: every output equals its *sequential* decode bit-for-bit."""
    jobs, arrivals = spec
    # Capacity must admit the widest request eventually (the scheduler
    # rejects oversized strategies up front; the hand driver just waits).
    max_rows = max(max_rows,
                   max(s.row_state(sos_id=SOS, eos_id=EOS).rows
                       for _, s in jobs))
    expected = [strategy.decode(ContinuousHistoryStubModel(), source, **DECODE,
                                max_length=max_length)
                for source, strategy in jobs]
    got = continuous_decode(ContinuousHistoryStubModel(), jobs,
                            arrivals=arrivals, max_rows=max_rows,
                            max_length=max_length)
    assert got == expected


def test_continuous_retire_then_join_reuses_compacted_rows():
    """A joiner that lands in rows vacated by a retired request still decodes
    exactly its sequential output (the compaction left no residue)."""
    jobs = [([3, 4], GreedyStrategy()),
            ([5, 6, 7], BeamStrategy(beam_size=3, length_penalty=0.6)),
            ([8, 9], GreedyStrategy()),
            ([10, 4, 6], BeamStrategy(beam_size=2, length_penalty=0.0))]
    arrivals = [0, 0, 4, 6]  # late arrivals join after earlier retires
    expected = [strategy.decode(ContinuousHistoryStubModel(), source, **DECODE,
                                max_length=6)
                for source, strategy in jobs]
    got = continuous_decode(ContinuousHistoryStubModel(), jobs,
                            arrivals=arrivals, max_rows=4, max_length=6)
    assert got == expected


def test_continuous_never_eos_truncates_each_row_at_its_own_max_length():
    model_factory = lambda: ContinuousHistoryStubModel(never_eos=True)
    jobs = [([3, 4, 5], GreedyStrategy()),
            ([6], BeamStrategy(beam_size=2, length_penalty=0.6)),
            ([7, 8], GreedyStrategy())]
    expected = [strategy.decode(model_factory(), source, **DECODE,
                                max_length=5)
                for source, strategy in jobs]
    got = continuous_decode(model_factory(), jobs, arrivals=[0, 1, 2],
                            max_rows=3, max_length=5)
    assert got == expected
    assert all(len(out) == 5 for out in got)


def test_continuous_real_model_mixed_strategies(tiny_model, beam_sources):
    """Real transformer: greedy, beam and seed-pinned sampling requests join
    a capacity-limited batch at staggered steps; every request's tokens are
    bitwise its sequential decode."""
    vocab = tiny_model.encoder.vocab
    encoded = [tiny_model.encoder.encode_source(src) for src in beam_sources
               if src]  # continuous join requires a non-empty source
    strategies = [GreedyStrategy(),
                  BeamStrategy(beam_size=3, length_penalty=0.6),
                  SampleStrategy(temperature=0.8, top_k=8, seed=11),
                  BeamStrategy(beam_size=2, length_penalty=0.0),
                  GreedyStrategy(),
                  SampleStrategy(temperature=1.2, top_p=0.9, seed=3)]
    jobs = list(zip(encoded, strategies))
    kwargs = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id,
                  pad_id=vocab.pad_id)
    expected = [strategy.decode(tiny_model.model, ids, **kwargs,
                                max_length=24)
                for ids, strategy in jobs]

    batch = InflightBatch(tiny_model.model, sos_id=vocab.sos_id,
                          eos_id=vocab.eos_id, pad_id=vocab.pad_id)
    pending = list(range(len(jobs)))
    states: list = [None] * len(jobs)
    step = 0
    while pending or batch.num_rows:
        while pending and 2 * pending[0] <= step:  # join every other step
            i = pending[0]
            ids, strategy = jobs[i]
            state = strategy.row_state(sos_id=vocab.sos_id,
                                       eos_id=vocab.eos_id, max_length=24)
            if state.rows > batch.free_rows(5):
                break
            pending.pop(0)
            batch.add(_Work(), state, ids)
            states[i] = state
        if batch.num_rows:
            batch.step()
        step += 1
    assert [state.result() for state in states] == expected
