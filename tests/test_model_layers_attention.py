"""Tests for neural layers and multi-head attention."""

import numpy as np
import pytest

from repro.model.attention import (
    KVCache,
    MultiHeadAttention,
    causal_mask,
    combined_decoder_mask,
    padding_mask,
)
from repro.model.autograd import Tensor
from repro.model.layers import (
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    PositionalEncoding,
    sinusoidal_positions,
)


class TestLinearAndNorm:
    def test_linear_shapes(self):
        rng = np.random.default_rng(0)
        layer = Linear(8, 16, rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 16)

    def test_linear_without_bias(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 4, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_layernorm_normalises_last_axis(self):
        layer = LayerNorm(16)
        x = Tensor(np.random.default_rng(1).normal(3.0, 2.0, size=(4, 16)))
        out = layer(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_feedforward_shapes(self):
        rng = np.random.default_rng(2)
        ffn = FeedForward(8, 32, rng)
        out = ffn(Tensor(rng.normal(size=(2, 3, 8))))
        assert out.shape == (2, 3, 8)


class TestEmbeddingAndPositions:
    def test_embedding_lookup_shape(self):
        rng = np.random.default_rng(0)
        emb = Embedding(50, 8, rng)
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 8)

    def test_sinusoidal_positions_properties(self):
        table = sinusoidal_positions(64, 16)
        assert table.shape == (64, 16)
        assert np.all(np.abs(table) <= 1.0)
        # Distinct positions get distinct encodings.
        assert not np.allclose(table[0], table[1])

    def test_positional_encoding_offset(self):
        pe = PositionalEncoding(32, 8)
        x = Tensor(np.zeros((1, 4, 8)))
        at_zero = pe(x, offset=0).data
        at_four = pe(x, offset=4).data
        assert not np.allclose(at_zero, at_four)

    def test_positional_encoding_overflow_raises(self):
        pe = PositionalEncoding(8, 4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 16, 4))))


class TestModuleParameterCollection:
    def test_collects_nested_parameters(self):
        rng = np.random.default_rng(0)

        class Wrapper(Module):
            def __init__(self):
                self.inner = Linear(4, 4, rng)
                self.stack = [Linear(4, 4, rng), LayerNorm(4)]

        module = Wrapper()
        # inner (2) + stack linear (2) + layernorm (2)
        assert len(module.parameters()) == 6
        assert module.num_parameters() == 4 * 4 * 2 + 4 * 2 + 4 * 2

    def test_zero_grad_clears_all(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 3, rng)
        out = layer(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestMasks:
    def test_padding_mask_shape_and_content(self):
        ids = np.array([[5, 6, 0], [7, 0, 0]])
        mask = padding_mask(ids, pad_id=0)
        assert mask.shape == (2, 1, 1, 3)
        assert mask[0, 0, 0].tolist() == [False, False, True]

    def test_causal_mask_upper_triangle(self):
        mask = causal_mask(4)
        assert mask.shape == (1, 1, 4, 4)
        assert not mask[0, 0, 2, 1]
        assert mask[0, 0, 1, 2]

    def test_combined_decoder_mask(self):
        ids = np.array([[3, 4, 0]])
        mask = combined_decoder_mask(ids, pad_id=0)
        assert mask.shape == (1, 1, 3, 3)
        assert mask[0, 0, 0, 1]          # causal
        assert mask[0, 0, 2, 2].item() is np.True_ or mask[0, 0, 2, 2]  # padding


class TestMultiHeadAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention(16, 4, rng)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        out = attn(x, x, x)
        assert out.shape == (2, 5, 16)

    def test_invalid_head_split_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, np.random.default_rng(0))

    def test_masking_changes_output(self):
        rng = np.random.default_rng(1)
        attn = MultiHeadAttention(8, 2, rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        unmasked = attn(x, x, x).data
        masked = attn(x, x, x, mask=causal_mask(4)).data
        assert not np.allclose(unmasked, masked)

    def test_cross_attention_different_lengths(self):
        rng = np.random.default_rng(2)
        attn = MultiHeadAttention(8, 2, rng)
        query = Tensor(rng.normal(size=(1, 3, 8)))
        memory = Tensor(rng.normal(size=(1, 7, 8)))
        out = attn(query, memory, memory)
        assert out.shape == (1, 3, 8)

    def test_kv_cache_incremental_matches_full(self):
        rng = np.random.default_rng(3)
        attn = MultiHeadAttention(8, 2, rng, dropout=0.0)
        sequence = Tensor(rng.normal(size=(1, 4, 8)))
        full = attn(sequence, sequence, sequence, mask=causal_mask(4)).data

        cache = KVCache()
        incremental = []
        for step in range(4):
            token = Tensor(sequence.data[:, step:step + 1, :])
            out = attn(token, token, token, cache=cache)
            incremental.append(out.data[:, 0, :])
        incremental = np.stack(incremental, axis=1)
        assert np.allclose(full, incremental, atol=1e-10)

    def test_kv_cache_length_grows(self):
        cache = KVCache()
        assert cache.length == 0
        cache.append(np.zeros((1, 2, 3, 4)), np.zeros((1, 2, 3, 4)))
        cache.append(np.zeros((1, 2, 2, 4)), np.zeros((1, 2, 2, 4)))
        assert cache.length == 5

    def test_gradients_flow_through_attention(self):
        rng = np.random.default_rng(4)
        attn = MultiHeadAttention(8, 2, rng)
        x = Tensor(rng.normal(size=(1, 3, 8)), requires_grad=True)
        attn(x, x, x).sum().backward()
        assert x.grad is not None
        assert attn.q_proj.weight.grad is not None
