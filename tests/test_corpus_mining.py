"""Tests for the simulated GitHub mining layer."""

from repro.corpus.mining import MiningConfig, generate_repositories, mine_c_programs


class TestRepositoryGeneration:
    def test_population_size(self):
        repos = generate_repositories(MiningConfig(num_repositories=25, seed=3))
        assert len(repos) == 25

    def test_deterministic_given_seed(self):
        config = MiningConfig(num_repositories=10, seed=42)
        first = generate_repositories(config)
        second = generate_repositories(config)
        assert [r.name for r in first] == [r.name for r in second]
        assert [f.text for r in first for f in r.files] == \
               [f.text for r in second for f in r.files]

    def test_different_seeds_differ(self):
        a = generate_repositories(MiningConfig(num_repositories=10, seed=1))
        b = generate_repositories(MiningConfig(num_repositories=10, seed=2))
        assert [r.name for r in a] != [r.name for r in b]

    def test_some_repositories_are_not_mpi_related(self):
        repos = generate_repositories(MiningConfig(num_repositories=60, seed=5,
                                                   non_mpi_repo_fraction=0.3))
        assert any(not r.mentions_mpi() for r in repos)
        assert any(r.mentions_mpi() for r in repos)

    def test_repositories_have_files_and_metadata(self):
        repos = generate_repositories(MiningConfig(num_repositories=5, seed=7))
        for repo in repos:
            assert repo.files
            assert repo.readme
            assert repo.description

    def test_corrupted_and_no_main_files_exist(self):
        config = MiningConfig(num_repositories=40, seed=9, corrupted_fraction=0.2,
                              no_main_fraction=0.2)
        repos = generate_repositories(config)
        files = [f for r in repos for f in r.files]
        assert any(f.corrupted for f in files)
        assert any(not f.has_main for f in files)


class TestMiningFilters:
    def test_non_mpi_repositories_excluded(self):
        config = MiningConfig(num_repositories=50, seed=11, non_mpi_repo_fraction=0.4)
        repos = generate_repositories(config)
        programs = mine_c_programs(repos)
        mpi_repo_names = {r.name for r in repos if r.mentions_mpi()}
        for program in programs:
            assert program.path.split("/")[0] in mpi_repo_names

    def test_files_without_main_excluded(self):
        config = MiningConfig(num_repositories=40, seed=13, no_main_fraction=0.3)
        repos = generate_repositories(config)
        programs = mine_c_programs(repos)
        assert all(p.has_main for p in programs)

    def test_mining_returns_nonempty_for_default_config(self):
        repos = generate_repositories(MiningConfig(num_repositories=20, seed=17))
        assert len(mine_c_programs(repos)) > 20
