"""Tests for SBT and X-SBT linearisation."""

from repro.clang.parser import parse_source
from repro.xsbt import (
    compression_ratio,
    sbt_length,
    sbt_string,
    sbt_tokens,
    xsbt_for_source,
    xsbt_length,
    xsbt_string,
    xsbt_tokens,
)


class TestSBT:
    def test_sbt_is_balanced(self, pi_source):
        unit = parse_source(pi_source)
        tokens = sbt_tokens(unit)
        assert tokens.count("(") == tokens.count(")")

    def test_sbt_embeds_leaf_values(self):
        unit = parse_source("int main() { total = 42; }")
        text = sbt_string(unit)
        assert "identifier_total" in text
        assert "number_literal_42" in text

    def test_sbt_reconstructible_node_names(self, pi_source):
        unit = parse_source(pi_source)
        text = sbt_string(unit)
        assert "function_definition" in text
        assert "compound_statement" in text


class TestXSBT:
    def test_xsbt_shorter_than_sbt(self, pi_source):
        unit = parse_source(pi_source)
        assert xsbt_length(unit) < sbt_length(unit)

    def test_compression_ratio_below_threshold(self, pi_source):
        # The paper reports X-SBT cuts the sequence by more than half.
        unit = parse_source(pi_source)
        assert compression_ratio(unit) < 0.5

    def test_drops_identifier_leaves(self, pi_source):
        unit = parse_source(pi_source)
        text = xsbt_string(unit)
        assert "identifier" not in text
        assert "number_literal" not in text

    def test_keeps_statement_structure(self, pi_source):
        unit = parse_source(pi_source)
        tokens = xsbt_tokens(unit)
        assert any(t.startswith("function_definition") for t in tokens)
        assert any("for_statement" in t for t in tokens)
        assert any("call_expression" in t for t in tokens)

    def test_open_close_tags_match(self, pi_source):
        unit = parse_source(pi_source)
        tokens = xsbt_tokens(unit)
        opens = sum(1 for t in tokens if t.endswith("__"))
        closes = sum(1 for t in tokens if t.startswith("__"))
        assert opens == closes

    def test_parameter_declarations_present(self):
        text = xsbt_for_source("int main(int argc, char **argv) { return 0; }")
        assert text.count("parameter_declaration") == 2

    def test_xsbt_of_empty_function(self):
        text = xsbt_for_source("void noop(void) { }")
        assert "function_definition" in text

    def test_xsbt_for_source_tolerates_broken_code(self):
        text = xsbt_for_source("int main() { MPI_Init(&argc, ")
        assert "function_definition" in text

    def test_deterministic(self, pi_source):
        assert xsbt_for_source(pi_source) == xsbt_for_source(pi_source)
