"""Tests for the MPI knowledge base."""

from repro.mpiknow import (
    ALL_MPI_FUNCTION_NAMES,
    MPI_COMMON_CORE,
    MPI_FUNCTIONS,
    categories,
    functions_in_category,
    is_common_core,
    is_mpi_call_name,
    is_mpi_function,
    is_mpi_identifier,
    render_call,
)


class TestRegistry:
    def test_common_core_matches_paper_table_1b(self):
        assert MPI_COMMON_CORE == (
            "MPI_Finalize", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Init",
            "MPI_Recv", "MPI_Send", "MPI_Reduce", "MPI_Bcast",
        )

    def test_common_core_functions_registered(self):
        for name in MPI_COMMON_CORE:
            assert name in MPI_FUNCTIONS
            assert MPI_FUNCTIONS[name].common_core

    def test_registry_has_broad_coverage(self):
        assert len(ALL_MPI_FUNCTION_NAMES) >= 100
        assert "MPI_Allreduce" in MPI_FUNCTIONS
        assert "MPI_Cart_create" in MPI_FUNCTIONS
        assert "MPI_File_open" in MPI_FUNCTIONS

    def test_categories_cover_major_groups(self):
        names = categories()
        for expected in ("environment", "communicator", "point_to_point", "collective"):
            assert expected in names

    def test_functions_in_category(self):
        collectives = functions_in_category("collective")
        assert "MPI_Bcast" in collectives
        assert "MPI_Reduce" in collectives
        assert collectives == sorted(collectives)


class TestPredicates:
    def test_is_mpi_function(self):
        assert is_mpi_function("MPI_Send")
        assert not is_mpi_function("printf")

    def test_is_common_core(self):
        assert is_common_core("MPI_Reduce")
        assert not is_common_core("MPI_Allreduce")

    def test_is_mpi_call_name_excludes_constants(self):
        assert is_mpi_call_name("MPI_Send")
        assert is_mpi_call_name("MPI_Nonstandard_wrapper")  # any MPI_ call counts
        assert not is_mpi_call_name("MPI_COMM_WORLD")
        assert not is_mpi_call_name("MPI_STATUS_IGNORE")

    def test_is_mpi_identifier(self):
        assert is_mpi_identifier("MPI_COMM_WORLD")
        assert is_mpi_identifier("MPI_Send")
        assert not is_mpi_identifier("rank")


class TestRenderCall:
    def test_render_simple_call(self):
        assert render_call("MPI_Finalize") == "MPI_Finalize();"

    def test_render_with_defaults(self):
        text = render_call("MPI_Comm_rank")
        assert text == "MPI_Comm_rank(MPI_COMM_WORLD, &rank);"

    def test_render_with_overrides(self):
        text = render_call("MPI_Reduce", buf="&local", recvbuf="&total", count="1")
        assert text.startswith("MPI_Reduce(&local, &total, 1,")

    def test_render_unknown_function_empty_args(self):
        assert render_call("MPI_Unknown_thing") == "MPI_Unknown_thing();"

    def test_rendered_calls_parse(self):
        from repro.clang.parser import parse_source

        for name in ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Bcast", "MPI_Reduce",
                     "MPI_Scatter", "MPI_Gather", "MPI_Allreduce", "MPI_Barrier"):
            program = "int main(int argc, char **argv) { " + render_call(name) + " }"
            unit = parse_source(program, tolerant=False)
            assert unit.has_main()
