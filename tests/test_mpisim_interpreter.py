"""Tests for the C interpreter and the multi-rank runtime."""

import pytest

from repro.mpisim.runtime import run_program
from repro.mpisim.validate import all_floats, expect_close, first_float, validate_program


def _single_rank_stdout(source: str) -> str:
    result = run_program(source, num_ranks=1)
    assert result.ok, result.errors()
    return result.stdout


class TestSerialInterpretation:
    def test_arithmetic_and_printf(self):
        out = _single_rank_stdout(
            'int main() { int a = 7; double b = 2.5; printf("%d %f\\n", a * 2, b + 1.0); return 0; }'
        )
        assert out == "14 3.500000\n"

    def test_integer_division_and_modulo(self):
        out = _single_rank_stdout(
            'int main() { printf("%d %d\\n", 7 / 2, 7 % 3); return 0; }'
        )
        assert out == "3 1\n"

    def test_for_loop_accumulation(self):
        out = _single_rank_stdout(
            'int main() { int i; int s = 0; for (i = 0; i < 10; i++) { s += i; } '
            'printf("%d\\n", s); return 0; }'
        )
        assert out == "45\n"

    def test_while_break_continue(self):
        source = (
            "int main() {\n"
            "    int i = 0;\n"
            "    int total = 0;\n"
            "    while (1) {\n"
            "        i++;\n"
            "        if (i > 10) {\n"
            "            break;\n"
            "        }\n"
            "        if (i % 2 == 0) {\n"
            "            continue;\n"
            "        }\n"
            "        total += i;\n"
            "    }\n"
            '    printf("%d\\n", total);\n'
            "    return 0;\n"
            "}\n"
        )
        assert _single_rank_stdout(source) == "25\n"

    def test_arrays_and_pointers(self):
        source = (
            "#include <stdlib.h>\n"
            "int main() {\n"
            "    int i;\n"
            "    double *v = (double *) malloc(4 * sizeof(double));\n"
            "    double fixed[3];\n"
            "    for (i = 0; i < 4; i++) {\n"
            "        v[i] = (double) i * 2.0;\n"
            "    }\n"
            "    fixed[0] = v[3];\n"
            '    printf("%f %f\\n", v[2], fixed[0]);\n'
            "    free(v);\n"
            "    return 0;\n"
            "}\n"
        )
        assert _single_rank_stdout(source) == "4.000000 6.000000\n"

    def test_ternary_and_logical_ops(self):
        out = _single_rank_stdout(
            'int main() { int a = 5; int b = (a > 3 && a < 10) ? 1 : 0; printf("%d\\n", b); return 0; }'
        )
        assert out == "1\n"

    def test_math_builtins(self):
        out = _single_rank_stdout(
            '#include <math.h>\nint main() { printf("%f\\n", sqrt(16.0) + pow(2.0, 3.0)); return 0; }'
        )
        assert out == "12.000000\n"

    def test_user_defined_function_call(self):
        source = (
            "double square(double x) {\n"
            "    return x * x;\n"
            "}\n"
            "int main() {\n"
            '    printf("%f\\n", square(3.0) + square(4.0));\n'
            "    return 0;\n"
            "}\n"
        )
        assert _single_rank_stdout(source) == "25.000000\n"

    def test_switch_statement(self):
        source = (
            "int main() {\n"
            "    int mode = 2;\n"
            "    int out = 0;\n"
            "    switch (mode) {\n"
            "        case 1:\n"
            "            out = 10;\n"
            "            break;\n"
            "        case 2:\n"
            "            out = 20;\n"
            "            break;\n"
            "        default:\n"
            "            out = 30;\n"
            "    }\n"
            '    printf("%d\\n", out);\n'
            "    return 0;\n"
            "}\n"
        )
        assert _single_rank_stdout(source) == "20\n"

    def test_rand_is_deterministic_per_seed(self):
        source = (
            "#include <stdlib.h>\n"
            "int main() {\n"
            "    srand(7);\n"
            '    printf("%d %d\\n", rand() % 100, rand() % 100);\n'
            "    return 0;\n"
            "}\n"
        )
        assert _single_rank_stdout(source) == _single_rank_stdout(source)

    def test_exit_code_propagates(self):
        result = run_program("int main() { return 3; }", num_ranks=1)
        assert result.ranks[0].exit_code == 3
        assert not result.ok


class TestMPIPrograms:
    def test_pi_program_on_multiple_rank_counts(self, pi_source):
        for ranks in (1, 2, 4):
            result = run_program(pi_source, num_ranks=ranks)
            assert result.ok, result.errors()
            assert abs(first_float(result.stdout) - 3.14159265) < 1e-3

    def test_send_recv_roundtrip_program(self):
        source = (
            "#include <stdio.h>\n"
            "#include <mpi.h>\n"
            "int main(int argc, char **argv) {\n"
            "    int rank, size;\n"
            "    double value = 0.0;\n"
            "    MPI_Init(&argc, &argv);\n"
            "    MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n"
            "    MPI_Comm_size(MPI_COMM_WORLD, &size);\n"
            "    if (rank == 0) {\n"
            "        value = 3.5;\n"
            "        MPI_Send(&value, 1, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD);\n"
            "    }\n"
            "    if (rank == 1) {\n"
            "        MPI_Recv(&value, 1, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n"
            '        printf("received %f\\n", value);\n'
            "    }\n"
            "    MPI_Finalize();\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_program(source, num_ranks=2)
        assert result.ok
        assert "received 3.500000" in result.stdout

    def test_deadlocked_program_reports_error(self):
        source = (
            "#include <mpi.h>\n"
            "int main(int argc, char **argv) {\n"
            "    int rank, size;\n"
            "    double v = 0.0;\n"
            "    MPI_Init(&argc, &argv);\n"
            "    MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n"
            "    MPI_Comm_size(MPI_COMM_WORLD, &size);\n"
            "    MPI_Recv(&v, 1, MPI_DOUBLE, 0, 9, MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n"
            "    MPI_Finalize();\n"
            "    return 0;\n"
            "}\n"
        )
        result = run_program(source, num_ranks=1, timeout=0.5)
        assert not result.ok
        assert result.errors()

    def test_undefined_identifier_is_reported_not_raised(self):
        result = run_program("int main() { x = y + 1; return 0; }", num_ranks=1)
        assert not result.ok
        assert "undefined identifier" in result.errors()[0]


class TestValidation:
    def test_validate_program_full_pass(self, pi_source):
        verdict = validate_program(pi_source, num_ranks=4,
                                   check=expect_close(3.14159265, 1e-3))
        assert verdict.parses and verdict.runs and verdict.check_passed
        assert verdict.valid

    def test_validate_rejects_unparseable(self):
        verdict = validate_program("int main( { }", num_ranks=1)
        assert not verdict.parses
        assert not verdict.valid

    def test_validate_without_check(self, pi_source):
        verdict = validate_program(pi_source, num_ranks=2)
        assert verdict.valid
        assert verdict.check_passed is None

    def test_validate_failed_numerical_check(self, pi_source):
        verdict = validate_program(pi_source, num_ranks=2, check=expect_close(99.0, 0.1))
        assert verdict.parses and verdict.runs
        assert verdict.check_passed is False
        assert not verdict.valid

    def test_float_extraction_helpers(self):
        text = "a = 1.5 b = -2.25 c = 3"
        assert first_float(text) == 1.5
        assert all_floats(text) == [1.5, -2.25]
        assert first_float("no numbers") is None
