"""Differential tests: the no-tape inference fast path vs. the tape path.

The decode hot path now runs tape-free on raw-ndarray kernels
(:func:`repro.model.autograd.inference_mode`), with float32 compute by
default.  Correctness is locked in two tiers:

* **float64 fast path ≡ tape path, bitwise** — the fused kernels replicate
  the tape ops expression for expression, so under
  ``inference_mode(dtype=np.float64)`` every decode (greedy, beam,
  sequential, batched) must produce *identical* token sequences — and
  ``decode_step`` identical logits bit patterns — to ``tape_mode()``.
  Hypothesis drives random sources/beam settings over random-weight models;
  the real trained tiny model covers the production configuration.
* **float32 fast path agrees on argmax** — the default inference dtype
  trades ulps for speed; it must still select the same token sequences as
  the float64 reference across the differential suite.

Plus the mode/dtype plumbing itself: ops skip tape construction under
inference mode, constants follow the configured dtype (no silent float64
upcasts), and the dtype-cast weight caches invalidate when the optimiser or
checkpoint loader touches parameters in place.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.attention import KVCache
from repro.model.autograd import (
    Tensor,
    inference_mode,
    is_grad_enabled,
    tape_mode,
)
from repro.model.config import ModelConfig
from repro.model.generation import (
    beam_search_decode,
    beam_search_decode_batch,
    greedy_decode,
    greedy_decode_batch,
)
from repro.model.transformer import Seq2SeqTransformer

PAD, SOS, EOS = 0, 1, 2
VOCAB = 40


def _make_model(seed: int) -> Seq2SeqTransformer:
    config = ModelConfig(vocab_size=VOCAB, d_model=16, num_heads=2,
                         num_encoder_layers=1, num_decoder_layers=2,
                         ffn_dim=32, dropout=0.1, max_positions=64, seed=seed)
    return Seq2SeqTransformer(config)


@pytest.fixture(scope="module")
def models() -> dict[int, Seq2SeqTransformer]:
    """Random-weight models reused across hypothesis examples."""
    return {seed: _make_model(seed) for seed in (0, 1, 2)}


DECODE = dict(sos_id=SOS, eos_id=EOS, pad_id=PAD)


@st.composite
def source_batches(draw):
    return draw(st.lists(
        st.lists(st.integers(min_value=3, max_value=VOCAB - 1),
                 min_size=0, max_size=8),
        min_size=1, max_size=4))


# ----------------------------------------------- fp64 fast path ≡ tape path


@settings(max_examples=25, deadline=None)
@given(sources=source_batches(), seed=st.sampled_from([0, 1, 2]),
       max_length=st.integers(min_value=1, max_value=8))
def test_greedy_fp64_fast_path_matches_tape(models, sources, seed, max_length):
    model = models[seed]
    with tape_mode():
        expected = [greedy_decode(model, s, **DECODE, max_length=max_length)
                    for s in sources]
        expected_batch = greedy_decode_batch(model, sources, **DECODE,
                                             max_length=max_length)
    with inference_mode(dtype=np.float64):
        assert [greedy_decode(model, s, **DECODE, max_length=max_length)
                for s in sources] == expected
        assert greedy_decode_batch(model, sources, **DECODE,
                                   max_length=max_length) == expected_batch


@settings(max_examples=25, deadline=None)
@given(sources=source_batches(), seed=st.sampled_from([0, 1, 2]),
       beam_size=st.integers(min_value=2, max_value=3),
       max_length=st.integers(min_value=1, max_value=6),
       length_penalty=st.sampled_from([0.0, 0.6]))
def test_beam_fp64_fast_path_matches_tape(models, sources, seed, beam_size,
                                          max_length, length_penalty):
    model = models[seed]
    kwargs = dict(DECODE, beam_size=beam_size, max_length=max_length,
                  length_penalty=length_penalty)
    with tape_mode():
        expected = [beam_search_decode(model, s, **kwargs) for s in sources]
        expected_batch = beam_search_decode_batch(model, sources, **kwargs)
    with inference_mode(dtype=np.float64):
        assert [beam_search_decode(model, s, **kwargs) for s in sources] == expected
        assert beam_search_decode_batch(model, sources, **kwargs) == expected_batch


def test_decode_step_logits_are_bitwise_identical(models):
    """Not just the argmax: every logit bit must match at float64."""
    model = models[0]
    src = np.asarray([[5, 9, 3, 17], [4, PAD, PAD, PAD]], dtype=np.int64)

    def run_steps():
        memory = model.encode(src, PAD, training=False)
        state = model.start_decoding()
        logits = []
        current = np.full((2, 1), SOS, dtype=np.int64)
        for _ in range(5):
            step_logits = model.decode_step(current, memory, src, PAD, state)
            logits.append(step_logits)
            current = np.argmax(step_logits, axis=-1)[:, None].astype(np.int64)
        return memory.data, logits

    with tape_mode():
        tape_memory, tape_logits = run_steps()
    with inference_mode(dtype=np.float64):
        fast_memory, fast_logits = run_steps()

    assert np.array_equal(tape_memory, fast_memory)
    for tape_step, fast_step in zip(tape_logits, fast_logits):
        assert np.array_equal(tape_step, fast_step)
        assert fast_step.dtype == np.float64


def test_beam_reorder_exactness_through_kv_cache(models):
    """Beam pruning reorders preallocated cache rows in place; the float64
    fast path must still track the tape path exactly through many prunes."""
    model = models[1]
    sources = [[7, 8, 9, 10, 11], [12, 13], [14]]
    kwargs = dict(DECODE, beam_size=4, max_length=12, length_penalty=0.6)
    with tape_mode():
        expected = beam_search_decode_batch(model, sources, **kwargs)
    with inference_mode(dtype=np.float64):
        assert beam_search_decode_batch(model, sources, **kwargs) == expected


# -------------------------------------------------- fp32 argmax agreement


@settings(max_examples=20, deadline=None)
@given(sources=source_batches(), seed=st.sampled_from([0, 1, 2]),
       max_length=st.integers(min_value=1, max_value=8))
def test_greedy_fp32_agrees_on_argmax(models, sources, seed, max_length):
    """The default (float32) fast path selects the same token sequences."""
    model = models[seed]
    with tape_mode():
        expected = greedy_decode_batch(model, sources, **DECODE,
                                       max_length=max_length)
    assert greedy_decode_batch(model, sources, **DECODE,
                               max_length=max_length) == expected


def test_beam_fp32_agrees_on_token_sequences(models):
    model = models[2]
    sources = [[3, 4, 5, 6], [7, 8], [], [9]]
    kwargs = dict(DECODE, beam_size=3, max_length=10, length_penalty=0.6)
    with tape_mode():
        expected = beam_search_decode_batch(model, sources, **kwargs)
    assert beam_search_decode_batch(model, sources, **kwargs) == expected


def test_fp32_is_the_default_inference_dtype(models):
    """Without a pinned mode, decoding runs float32 caches end to end."""
    model = models[0]
    from repro.model.generation import DecoderLoop

    loop = DecoderLoop(model, [[5, 6, 7]], pad_id=PAD)
    assert loop.memory.data.dtype == np.float32
    loop.step(np.full((1, 1), SOS, dtype=np.int64))
    assert loop.state.self_caches[0].keys.dtype == np.float32
    assert loop.state.cross_caches[0].keys.dtype == np.float32


# --------------------------------------------------------- real trained model


def test_real_model_fp64_fast_path_exact(tiny_model, pi_source):
    vocab = tiny_model.encoder.vocab
    encoded = [tiny_model.encoder.encode_source(pi_source)]
    kwargs = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id, pad_id=vocab.pad_id)
    with tape_mode():
        greedy_ref = greedy_decode_batch(tiny_model.model, encoded, **kwargs,
                                         max_length=40)
        beam_ref = beam_search_decode_batch(tiny_model.model, encoded, **kwargs,
                                            beam_size=3, max_length=30,
                                            length_penalty=0.6)
    with inference_mode(dtype=np.float64):
        assert greedy_decode_batch(tiny_model.model, encoded, **kwargs,
                                   max_length=40) == greedy_ref
        assert beam_search_decode_batch(tiny_model.model, encoded, **kwargs,
                                        beam_size=3, max_length=30,
                                        length_penalty=0.6) == beam_ref


def test_real_model_fp32_agrees_on_argmax(tiny_model, pi_source):
    vocab = tiny_model.encoder.vocab
    encoded = [tiny_model.encoder.encode_source(pi_source)]
    kwargs = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id, pad_id=vocab.pad_id)
    with tape_mode():
        greedy_ref = greedy_decode_batch(tiny_model.model, encoded, **kwargs,
                                         max_length=40)
        beam_ref = beam_search_decode_batch(tiny_model.model, encoded, **kwargs,
                                            beam_size=3, max_length=30,
                                            length_penalty=0.6)
    assert greedy_decode_batch(tiny_model.model, encoded, **kwargs,
                               max_length=40) == greedy_ref
    assert beam_search_decode_batch(tiny_model.model, encoded, **kwargs,
                                    beam_size=3, max_length=30,
                                    length_penalty=0.6) == beam_ref


# ------------------------------------------------------- mode/dtype plumbing


def test_inference_mode_skips_tape_construction():
    weight = Tensor(np.ones((2, 2)), requires_grad=True)
    with inference_mode():
        assert not is_grad_enabled()
        out = (Tensor(np.ones((2, 2))).matmul(weight) + 1.0).softmax()
        assert out._parents == []
        assert not out.requires_grad
    assert is_grad_enabled()
    tracked = Tensor(np.ones((2, 2))).matmul(weight)
    assert tracked.requires_grad and tracked._parents


def test_constants_follow_the_configured_dtype():
    """Satellite: no silent float64 upcasts under a float32 policy."""
    outside = Tensor(3.0)
    assert outside.data.dtype == np.float64  # tape default unchanged
    with inference_mode():  # float32 policy
        x = Tensor(np.ones(4, dtype=np.float32))
        assert x.data.dtype == np.float32
        assert (x + 1.0).data.dtype == np.float32
        assert (x * 2.5).data.dtype == np.float32
        assert Tensor(3.0).data.dtype == np.float32
    with inference_mode(dtype=np.float64):
        assert Tensor(3.0).data.dtype == np.float64


def test_gradients_follow_the_tensor_dtype():
    with tape_mode(dtype=np.float32):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
    assert x.grad.dtype == np.float32


def test_cast_cache_invalidates_on_in_place_update():
    from repro.model.layers import Linear, cast_param

    layer = Linear(3, 2, np.random.default_rng(0))
    first = cast_param(layer._cast_weight, layer.weight, np.float32)
    assert cast_param(layer._cast_weight, layer.weight, np.float32) is first
    layer.weight.data += 1.0
    layer.weight.mark_updated()
    refreshed = cast_param(layer._cast_weight, layer.weight, np.float32)
    assert refreshed is not first
    np.testing.assert_allclose(refreshed,
                               layer.weight.data.astype(np.float32))


def test_optimizer_step_invalidates_cast_caches():
    from repro.model.layers import Linear, cast_param
    from repro.model.optimizer import Adam

    layer = Linear(3, 2, np.random.default_rng(0))
    stale = cast_param(layer._cast_weight, layer.weight, np.float32)
    layer.weight.grad = np.ones_like(layer.weight.data)
    Adam([layer.weight]).step()
    fresh = cast_param(layer._cast_weight, layer.weight, np.float32)
    assert fresh is not stale
    np.testing.assert_allclose(fresh, layer.weight.data.astype(np.float32))


def test_training_still_works_after_inference(models):
    """A decode must not poison subsequent tape-based training."""
    model = _make_model(9)
    greedy_decode(model, [5, 6, 7], **DECODE, max_length=4)  # fast path
    src = np.asarray([[5, 6, 7]], dtype=np.int64)
    tgt = np.asarray([[SOS, 4]], dtype=np.int64)
    logits = model.forward(src, tgt, PAD, training=False)
    assert logits.data.dtype == np.float64
    loss = logits.sum()
    loss.backward()
    grads = [p.grad for p in model.parameters() if p.grad is not None]
    assert grads, "tape must be rebuilt outside inference mode"
    assert all(g.dtype == np.float64 for g in grads)


def test_set_default_inference_dtype_roundtrip():
    from repro.model.autograd import (
        default_inference_dtype,
        set_default_inference_dtype,
    )

    original = default_inference_dtype()
    try:
        set_default_inference_dtype(np.float64)
        assert default_inference_dtype() == np.dtype(np.float64)
        with inference_mode():
            assert Tensor(1.0).data.dtype == np.float64
        with pytest.raises(ValueError, match="float32 or float64"):
            set_default_inference_dtype(np.int32)
    finally:
        set_default_inference_dtype(original)


def test_causal_mask_is_cached_and_read_only():
    from repro.model.attention import causal_mask, combined_decoder_mask

    first = causal_mask(5)
    assert causal_mask(5) is first
    assert not first.flags.writeable
    # Consumers OR it with padding masks into a fresh, writable array.
    combined = combined_decoder_mask(np.asarray([[3, 4, PAD, PAD, PAD]]), PAD)
    assert combined.flags.writeable
    assert combined[0, 0, 0, 2]  # padding masked
    assert combined[0, 0, 0, 1]  # future masked


def test_modes_nest_and_restore():
    assert is_grad_enabled()
    with inference_mode():
        with tape_mode():
            assert is_grad_enabled()
            assert Tensor(1.0).data.dtype == np.float64
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_stub_models_keep_working_under_the_default_mode():
    """Generation wraps model calls in inference mode; duck-typed stub models
    (the differential harness pattern) must be unaffected."""
    from types import SimpleNamespace

    class Stub:
        def encode(self, source_ids, pad_id, *, training=False):
            return source_ids

        def start_decoding(self):
            return SimpleNamespace(position=0, self_caches=[KVCache()],
                                   cross_caches=[])

        def decode_step(self, token_ids, memory, source_ids, pad_id, state):
            fed = token_ids[:, None, :, None].astype(np.float64)
            state.self_caches[0].append(fed, fed)
            state.position += 1
            logits = np.zeros((source_ids.shape[0], 6))
            logits[:, 3 + state.position % 2] = 1.0
            return logits

    out = greedy_decode_batch(Stub(), [[3, 4], [5]], **DECODE, max_length=4)
    assert out == [[4, 3, 4, 3], [4, 3, 4, 3]]
