"""Tests for the vocabulary and example encoding."""

import numpy as np
import pytest

from repro.tokenization import (
    EOS,
    PAD,
    SEP,
    SOS,
    UNK,
    ExampleEncoder,
    SequenceConfig,
    Vocabulary,
    detokenize,
    pad_batch,
    tokenize_code,
    tokenize_xsbt,
)


class TestVocabulary:
    def test_special_tokens_present_by_default(self):
        vocab = Vocabulary()
        for token in (PAD, SOS, EOS, SEP, UNK):
            assert token in vocab

    def test_add_and_encode_roundtrip(self):
        vocab = Vocabulary()
        idx = vocab.add("MPI_Init")
        assert vocab.encode_token("MPI_Init") == idx
        assert vocab.decode_id(idx) == "MPI_Init"

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.encode_token("never_seen") == vocab.unk_id

    def test_build_from_sequences(self):
        vocab = Vocabulary.build([["a", "b", "a"], ["c"]])
        assert "a" in vocab and "b" in vocab and "c" in vocab

    def test_build_with_min_count(self):
        vocab = Vocabulary.build([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_build_with_max_size_keeps_most_frequent(self):
        vocab = Vocabulary.build([["a"] * 5 + ["b"] * 3 + ["c"]], max_size=7)
        assert len(vocab) == 7
        assert "a" in vocab and "b" in vocab
        assert "c" not in vocab

    def test_decode_strips_special_tokens(self):
        vocab = Vocabulary.build([["x"]])
        ids = [vocab.sos_id, vocab.encode_token("x"), vocab.eos_id]
        assert vocab.decode(ids) == ["x"]
        assert vocab.decode(ids, strip_special=False) == [SOS, "x", EOS]

    def test_serialisation_roundtrip(self):
        vocab = Vocabulary.build([["alpha", "beta"]])
        restored = Vocabulary.from_dict(vocab.to_dict())
        assert restored.token_to_id == vocab.token_to_id


class TestTokenizers:
    def test_tokenize_code_is_lexer_based(self, pi_source):
        tokens = tokenize_code(pi_source)
        assert "MPI_Init" in tokens
        assert '"pi = %f\\n"' in tokens

    def test_tokenize_xsbt_splits_on_whitespace(self):
        assert tokenize_xsbt("a__ b __a") == ["a__", "b", "__a"]


class TestExampleEncoder:
    def test_fit_builds_joint_vocabulary(self, small_dataset):
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20])
        assert "MPI_Init" in encoder.vocab
        assert "compound_statement__" in encoder.vocab

    def test_encoder_tokens_contain_sep(self, small_dataset):
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20])
        tokens = encoder.encoder_tokens(small_dataset.splits.train[0])
        assert SEP in tokens

    def test_no_xsbt_mode(self, small_dataset):
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20], use_xsbt=False)
        tokens = encoder.encoder_tokens(small_dataset.splits.train[0])
        assert SEP not in tokens

    def test_decoder_tokens_bracketed(self, small_dataset):
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20])
        tokens = encoder.decoder_tokens(small_dataset.splits.train[0])
        assert tokens[0] == SOS and tokens[-1] == EOS

    def test_truncation_respected(self, small_dataset):
        config = SequenceConfig(max_source_tokens=50, max_xsbt_tokens=10, max_target_tokens=60)
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20], config)
        example = small_dataset.splits.train[0]
        assert len(encoder.encoder_tokens(example)) <= 50 + 1 + 10
        assert len(encoder.decoder_tokens(example)) <= 62

    def test_encode_example_ids_within_vocab(self, small_dataset):
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20])
        encoded = encoder.encode_example(small_dataset.splits.train[0])
        assert max(encoded.encoder_ids) < len(encoder.vocab)
        assert max(encoded.decoder_ids) < len(encoder.vocab)

    def test_encode_source_for_inference(self, small_dataset, pi_source):
        encoder = ExampleEncoder.fit(small_dataset.splits.train[:20])
        ids = encoder.encode_source(pi_source, "compound_statement")
        assert ids
        assert encoder.vocab.sep_id in ids


class TestDetokenize:
    def test_statements_split_per_line(self):
        text = detokenize(["int", "x", "=", "1", ";", "x", "++", ";"])
        lines = text.strip().splitlines()
        assert len(lines) == 2

    def test_braces_adjust_indentation(self):
        tokens = ["int", "main", "(", ")", "{", "return", "0", ";", "}"]
        text = detokenize(tokens)
        assert "int main()" in text.splitlines()[0]
        assert text.splitlines()[1].startswith("    return")
        assert text.splitlines()[2] == "}"

    def test_roundtrip_preserves_mpi_call_shape(self, pi_source):
        tokens = tokenize_code(pi_source)
        text = detokenize(tokens)
        assert "MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);" in text

    def test_roundtrip_line_count_close_to_original(self, pi_source):
        from repro.clang.codegen import standardize

        standardized = standardize(pi_source)
        text = detokenize(tokenize_code(standardized))
        original_lines = len([l for l in standardized.splitlines() if l.strip()])
        detok_lines = len([l for l in text.splitlines() if l.strip()])
        assert abs(original_lines - detok_lines) <= 3


class TestPadBatch:
    def test_padding_shape_and_value(self):
        batch = pad_batch([[1, 2, 3], [4]], pad_id=0)
        assert batch.shape == (2, 3)
        assert batch[1, 1] == 0 and batch[1, 2] == 0

    def test_max_len_truncates(self):
        batch = pad_batch([[1, 2, 3, 4, 5]], pad_id=0, max_len=3)
        assert batch.shape == (1, 3)
        assert list(batch[0]) == [1, 2, 3]

    def test_empty_batch(self):
        batch = pad_batch([], pad_id=0)
        assert batch.shape == (0, 0)

    def test_dtype_is_integer(self):
        batch = pad_batch([[1]], pad_id=0)
        assert np.issubdtype(batch.dtype, np.integer)
