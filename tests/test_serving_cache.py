"""LRU cache semantics, canonical xSBT-based keying, and thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.serving.cache import LRUCache, canonical_cache_key


# ------------------------------------------------------------ LRU semantics


def test_put_get_roundtrip():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default="x") == "x"
    assert "a" in cache and len(cache) == 1


def test_eviction_is_least_recently_used():
    cache = LRUCache(capacity=3)
    for key in "abc":
        cache.put(key, key.upper())
    cache.get("a")          # refresh 'a'; 'b' is now least recently used
    cache.put("d", "D")
    assert cache.get("b") is None
    assert cache.get("a") == "A" and cache.get("d") == "D"
    assert cache.stats().evictions == 1


def test_put_refreshes_recency_and_overwrites():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)      # overwrite refreshes recency; no eviction
    cache.put("c", 3)       # evicts 'b', the stale entry
    assert cache.get("a") == 10
    assert cache.get("b") is None
    assert cache.get("c") == 3


def test_stats_and_clear():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.size, stats.capacity) == (1, 1, 1, 2)
    assert stats.hit_rate == pytest.approx(0.5)
    assert stats.as_dict()["hit_rate"] == pytest.approx(0.5)
    cache.clear()
    assert len(cache) == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LRUCache(capacity=0)


def test_keys_are_in_recency_order():
    cache = LRUCache(capacity=3)
    for key in "abc":
        cache.put(key, key)
    cache.get("a")
    assert cache.keys() == ["b", "c", "a"]


# ----------------------------------------------------------- canonical keys


SOURCE = """#include <stdio.h>
int main(int argc, char **argv) {
    int count = 4;
    printf("%d\\n", count);
    return 0;
}
"""

REFORMATTED = """#include <stdio.h>
int main(int argc, char **argv)
{
    // a comment the tokenizer drops
    int   count   = 4;
    printf("%d\\n",   count);
    return 0;
}
"""

RENAMED = SOURCE.replace("count", "total")


def test_formatting_and_comments_do_not_change_the_key():
    assert canonical_cache_key(SOURCE) == canonical_cache_key(REFORMATTED)


def test_identifier_changes_do_change_the_key():
    """xSBT alone is identical here — the token stream must disambiguate."""
    assert canonical_cache_key(SOURCE) != canonical_cache_key(RENAMED)


def test_key_accepts_precomputed_xsbt():
    from repro.xsbt.xsbt import xsbt_for_source

    assert canonical_cache_key(SOURCE, xsbt_for_source(SOURCE)) == \
        canonical_cache_key(SOURCE)


# ------------------------------------------------------------- concurrency


def test_concurrent_hammer_preserves_invariants():
    cache = LRUCache(capacity=32)
    errors: list[Exception] = []
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        try:
            barrier.wait()
            for i in range(400):
                key = f"k{(worker_id * 7 + i) % 64}"
                cache.put(key, (worker_id, i))
                value = cache.get(key)
                assert value is None or isinstance(value, tuple)
                len(cache)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert len(cache) <= 32
    stats = cache.stats()
    assert stats.hits + stats.misses == 8 * 400
    assert stats.size <= stats.capacity
