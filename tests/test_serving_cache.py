"""LRU cache semantics, canonical xSBT-based keying, and thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.serving.cache import LRUCache, canonical_cache_key


# ------------------------------------------------------------ LRU semantics


def test_put_get_roundtrip():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default="x") == "x"
    assert "a" in cache and len(cache) == 1


def test_eviction_is_least_recently_used():
    cache = LRUCache(capacity=3)
    for key in "abc":
        cache.put(key, key.upper())
    cache.get("a")          # refresh 'a'; 'b' is now least recently used
    cache.put("d", "D")
    assert cache.get("b") is None
    assert cache.get("a") == "A" and cache.get("d") == "D"
    assert cache.stats().evictions == 1


def test_put_refreshes_recency_and_overwrites():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)      # overwrite refreshes recency; no eviction
    cache.put("c", 3)       # evicts 'b', the stale entry
    assert cache.get("a") == 10
    assert cache.get("b") is None
    assert cache.get("c") == 3


def test_stats_and_clear():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.size, stats.capacity) == (1, 1, 1, 2)
    assert stats.hit_rate == pytest.approx(0.5)
    assert stats.as_dict()["hit_rate"] == pytest.approx(0.5)
    cache.clear()
    assert len(cache) == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LRUCache(capacity=0)


def test_keys_are_in_recency_order():
    cache = LRUCache(capacity=3)
    for key in "abc":
        cache.put(key, key)
    cache.get("a")
    assert cache.keys() == ["b", "c", "a"]


# ----------------------------------------------------------- canonical keys


SOURCE = """#include <stdio.h>
int main(int argc, char **argv) {
    int count = 4;
    printf("%d\\n", count);
    return 0;
}
"""

REFORMATTED = """#include <stdio.h>
int main(int argc, char **argv)
{
    // a comment the tokenizer drops
    int   count   = 4;
    printf("%d\\n",   count);
    return 0;
}
"""

RENAMED = SOURCE.replace("count", "total")


def test_formatting_and_comments_do_not_change_the_key():
    assert canonical_cache_key(SOURCE) == canonical_cache_key(REFORMATTED)


def test_identifier_changes_do_change_the_key():
    """xSBT alone is identical here — the token stream must disambiguate."""
    assert canonical_cache_key(SOURCE) != canonical_cache_key(RENAMED)


def test_key_accepts_precomputed_xsbt():
    from repro.xsbt.xsbt import xsbt_for_source

    assert canonical_cache_key(SOURCE, xsbt_for_source(SOURCE)) == \
        canonical_cache_key(SOURCE)


def test_generation_settings_change_the_key():
    """A beam-decoded result must never be served to a greedy request."""
    greedy = canonical_cache_key(SOURCE)
    beam4 = canonical_cache_key(SOURCE, beam_size=4, length_penalty=0.6)
    beam2 = canonical_cache_key(SOURCE, beam_size=2, length_penalty=0.6)
    assert len({greedy, beam4, beam2}) == 3
    # Penalty reranks beam hypotheses, so it is part of a beam key ...
    assert beam4 != canonical_cache_key(SOURCE, beam_size=4, length_penalty=0.0)
    # ... but greedy requests normalise: the penalty cannot change the output.
    assert greedy == canonical_cache_key(SOURCE, beam_size=1, length_penalty=0.9)


def test_beam_keys_stay_layout_invariant():
    assert canonical_cache_key(SOURCE, beam_size=4, length_penalty=0.6) == \
        canonical_cache_key(REFORMATTED, beam_size=4, length_penalty=0.6)


# ------------------------------------------------------------- concurrency


def test_concurrent_hammer_preserves_invariants():
    cache = LRUCache(capacity=32)
    errors: list[Exception] = []
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        try:
            barrier.wait()
            for i in range(400):
                key = f"k{(worker_id * 7 + i) % 64}"
                cache.put(key, (worker_id, i))
                value = cache.get(key)
                assert value is None or isinstance(value, tuple)
                len(cache)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert len(cache) <= 32
    stats = cache.stats()
    assert stats.hits + stats.misses == 8 * 400
    assert stats.size <= stats.capacity


def test_concurrent_mixed_beam_and_greedy_keys():
    """Thread-pool hammer over the serving key-space: greedy and beam variants
    of the same programs must neither alias nor lose updates, hit accounting
    must stay exact, and eviction must hold the capacity bound throughout."""
    from concurrent.futures import ThreadPoolExecutor

    configs = [(1, 0.0), (2, 0.6), (4, 0.6), (4, 1.0)]
    programs = [f"prog{n}" for n in range(6)]
    # Precompute a distinct key per (program, config) — cheap stand-ins with
    # the same shape the service uses (hash keyed on program + generation).
    keys = {(prog, cfg): f"{prog}|beam{cfg[0]}|lp{cfg[1]}"
            for prog in programs for cfg in configs}
    capacity = 16
    cache = LRUCache(capacity=capacity)
    rounds = 300
    workers = 8
    errors: list[Exception] = []

    def worker(worker_id: int) -> None:
        try:
            for i in range(rounds):
                combo = (worker_id * 7 + i) % (len(programs) * len(configs))
                prog = programs[combo % len(programs)]
                cfg = configs[combo // len(programs)]
                key = keys[(prog, cfg)]
                value = cache.get(key)
                if value is None:
                    cache.put(key, (prog, cfg))
                else:
                    # No lost updates / aliasing: a hit always returns the
                    # value stored under exactly this (program, config).
                    assert value == (prog, cfg), f"aliased entry for {key}"
                assert len(cache) <= capacity
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(worker, range(workers)))

    assert not errors
    stats = cache.stats()
    # Every round did exactly one counted lookup (get); hit accounting exact.
    assert stats.hits + stats.misses == workers * rounds
    assert stats.hits > 0 and stats.misses > 0
    assert stats.size <= stats.capacity == capacity
    # 24 distinct keys against capacity 16 must have forced evictions.
    assert stats.evictions > 0
