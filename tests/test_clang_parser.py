"""Tests for the recursive-descent C parser."""

import pytest

from repro.clang import ast_nodes as ast
from repro.clang.errors import ParseError
from repro.clang.parser import parse_source, parse_source_with_diagnostics, parses_cleanly


class TestTopLevel:
    def test_function_definition(self):
        unit = parse_source("int main(int argc, char **argv) { return 0; }")
        assert unit.has_main()
        main = unit.function("main")
        assert main.return_type == "int"
        assert [p.name for p in main.params] == ["argc", "argv"]
        assert main.params[1].pointer == 2

    def test_includes_preserved(self):
        unit = parse_source("#include <mpi.h>\n#include <stdio.h>\nint main() { return 0; }")
        includes = [i for i in unit.items if isinstance(i, ast.Include)]
        assert len(includes) == 2

    def test_global_declaration(self):
        unit = parse_source("static int counter = 0;\nint main() { return counter; }")
        declarations = [i for i in unit.items if isinstance(i, ast.Declaration)]
        assert declarations[0].storage == "static"
        assert declarations[0].declarators[0].name == "counter"

    def test_typedef_registers_type_name(self):
        unit = parse_source("typedef unsigned long word_t;\nint main() { word_t w = 3; return 0; }")
        typedefs = [i for i in unit.items if isinstance(i, ast.TypedefDecl)]
        assert typedefs[0].alias == "word_t"
        body = unit.function("main").body
        assert any(isinstance(s, ast.Declaration) and s.type_name == "word_t"
                   for s in body.statements)

    def test_struct_definition(self):
        unit = parse_source("struct point { int x; int y; };\nint main() { return 0; }")
        structs = [i for i in unit.items if isinstance(i, ast.StructDef)]
        assert structs[0].name == "point"
        assert len(structs[0].fields) == 2

    def test_function_prototype_is_declaration(self):
        unit = parse_source("double work(double x);\nint main() { return 0; }")
        assert unit.function("work") is None
        assert unit.has_main()

    def test_multiple_functions(self):
        source = """
        double square(double v) { return v * v; }
        int main() { double y = square(3.0); return 0; }
        """
        unit = parse_source(source)
        assert len(unit.functions()) == 2


class TestStatements:
    def _main_body(self, body: str) -> ast.Compound:
        unit = parse_source("int main() {\n" + body + "\n}")
        return unit.function("main").body

    def test_if_else(self):
        body = self._main_body("if (a > 0) { b = 1; } else { b = 2; }")
        statement = body.statements[0]
        assert isinstance(statement, ast.If)
        assert statement.otherwise is not None

    def test_while_and_do_while(self):
        body = self._main_body("while (x) { x--; } do { y++; } while (y < 3);")
        assert isinstance(body.statements[0], ast.While)
        assert isinstance(body.statements[1], ast.DoWhile)

    def test_for_with_declaration_init(self):
        body = self._main_body("for (int i = 0; i < 10; i++) { total += i; }")
        loop = body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Declaration)

    def test_for_with_empty_clauses(self):
        body = self._main_body("for (;;) { break; }")
        loop = body.statements[0]
        assert loop.init is None and loop.cond is None and loop.update is None

    def test_switch_with_cases(self):
        body = self._main_body(
            "switch (mode) { case 1: x = 1; break; default: x = 0; }"
        )
        switch = body.statements[0]
        assert isinstance(switch, ast.Switch)
        labels = [s for s in switch.body.statements if isinstance(s, ast.CaseLabel)]
        assert len(labels) == 2

    def test_break_continue_return(self):
        body = self._main_body("while (1) { if (x) { break; } continue; } return 2;")
        assert isinstance(body.statements[-1], ast.Return)

    def test_declaration_with_multiple_declarators(self):
        body = self._main_body("int a = 1, b, *c;")
        declaration = body.statements[0]
        assert [d.name for d in declaration.declarators] == ["a", "b", "c"]
        assert declaration.declarators[2].pointer == 1

    def test_array_declaration(self):
        body = self._main_body("double grid[100]; int dims[2];")
        first = body.statements[0].declarators[0]
        assert len(first.array_dims) == 1

    def test_initializer_list(self):
        body = self._main_body("int periods[2] = {1, 0};")
        init = body.statements[0].declarators[0].init
        assert isinstance(init, ast.InitList)
        assert len(init.values) == 2


class TestExpressions:
    def _expr(self, text: str) -> ast.Node:
        unit = parse_source(f"int main() {{ result = {text}; }}")
        statement = unit.function("main").body.statements[0]
        return statement.expr.value

    def test_precedence_multiplication_before_addition(self):
        expr = self._expr("a + b * c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_parenthesized_grouping(self):
        expr = self._expr("(a + b) * c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "*"
        assert isinstance(expr.left, ast.Parenthesized)

    def test_call_with_arguments(self):
        expr = self._expr("MPI_Reduce(&local, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD)")
        assert isinstance(expr, ast.Call)
        assert expr.callee_name == "MPI_Reduce"
        assert len(expr.args) == 7

    def test_address_of_and_dereference(self):
        expr = self._expr("&value")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "&"
        assert expr.kind == "pointer_expression"

    def test_cast_expression(self):
        expr = self._expr("(double) count")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "double"

    def test_cast_of_malloc(self):
        expr = self._expr("(double *) malloc(n * sizeof(double))")
        assert isinstance(expr, ast.Cast)
        assert "double" in expr.type_name
        assert isinstance(expr.operand, ast.Call)

    def test_sizeof_type(self):
        expr = self._expr("sizeof(double)")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "sizeof"

    def test_ternary(self):
        expr = self._expr("(a > b) ? a : b")
        assert isinstance(expr, ast.Conditional)

    def test_array_subscript_chain(self):
        expr = self._expr("matrix[i * n + j]")
        assert isinstance(expr, ast.ArraySubscript)

    def test_member_access(self):
        expr = self._expr("status.MPI_SOURCE")
        assert isinstance(expr, ast.MemberAccess)
        assert expr.member == "MPI_SOURCE"

    def test_postfix_increment(self):
        unit = parse_source("int main() { i++; }")
        statement = unit.function("main").body.statements[0]
        assert isinstance(statement.expr, ast.PostfixOp)

    def test_compound_assignment(self):
        unit = parse_source("int main() { sum += 4.0 / (1.0 + x * x); }")
        statement = unit.function("main").body.statements[0]
        assert isinstance(statement.expr, ast.Assignment)
        assert statement.expr.op == "+="

    def test_logical_operators(self):
        expr = self._expr("a && b || !c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "||"


class TestToleranceAndStrictness:
    def test_tolerant_parse_of_incomplete_code(self):
        unit, diagnostics = parse_source_with_diagnostics(
            "int main() { int x = ; MPI_Init(&argc, &argv); }"
        )
        assert unit.has_main()
        assert diagnostics

    def test_strict_parse_raises_on_garbage(self):
        with pytest.raises(ParseError):
            parse_source("int main() { int x = (1 + ; }", tolerant=False)

    def test_parses_cleanly_true_for_valid_program(self, pi_source):
        assert parses_cleanly(pi_source)

    def test_parses_cleanly_false_for_broken_program(self):
        assert not parses_cleanly("int main() { if (x { } }")

    def test_parses_cleanly_false_for_fragment_without_functions(self):
        assert not parses_cleanly("@@@@")

    def test_line_numbers_recorded(self, pi_source):
        unit = parse_source(pi_source)
        calls = unit.find_all("call_expression")
        lines = [c.line for c in calls]
        assert all(l > 0 for l in lines)
        assert lines == sorted(lines)


class TestNodeHelpers:
    def test_walk_and_find_all(self, pi_source):
        unit = parse_source(pi_source)
        call_names = [c.callee_name for c in unit.find_all("call_expression")]
        assert "MPI_Init" in call_names
        assert "MPI_Finalize" in call_names
        assert len(list(unit.walk())) > 50

    def test_function_lookup_missing(self, pi_source):
        unit = parse_source(pi_source)
        assert unit.function("does_not_exist") is None
