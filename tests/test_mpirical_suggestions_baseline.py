"""Tests for suggestion extraction/application and the rule-based baseline."""

from repro.dataset.removal import remove_mpi_calls
from repro.evaluation.classification import evaluate_program
from repro.mpirical.baseline import BaselineConfig, RuleBasedBaseline
from repro.mpirical.suggestions import (
    MPISuggestion,
    apply_suggestions,
    extract_suggestions,
    suggestions_by_function,
)


class TestExtractSuggestions:
    def test_recovers_removed_calls(self, pi_source):
        stripped = remove_mpi_calls(pi_source).stripped_code
        suggestions = extract_suggestions(stripped, pi_source)
        functions = [s.function for s in suggestions]
        assert functions == ["MPI_Init", "MPI_Comm_rank", "MPI_Comm_size",
                             "MPI_Reduce", "MPI_Finalize"]

    def test_anchors_are_within_file(self, pi_source):
        stripped = remove_mpi_calls(pi_source).stripped_code
        total_lines = len(stripped.splitlines())
        for suggestion in extract_suggestions(stripped, pi_source):
            assert 0 <= suggestion.insert_after_line <= total_lines

    def test_identical_codes_produce_no_suggestions(self, pi_source):
        assert extract_suggestions(pi_source, pi_source) == []

    def test_non_mpi_insertions_ignored(self):
        original = "int main() {\n    int x = 1;\n}\n"
        generated = "int main() {\n    int x = 1;\n    int y = 2;\n}\n"
        assert extract_suggestions(original, generated) == []

    def test_render_mentions_function_and_anchor(self):
        suggestion = MPISuggestion("MPI_Init", 3, "MPI_Init(&argc, &argv);")
        text = suggestion.render()
        assert "MPI_Init" in text and "after line 3" in text

    def test_suggestions_by_function_histogram(self):
        suggestions = [
            MPISuggestion("MPI_Send", 1, "MPI_Send();"),
            MPISuggestion("MPI_Send", 2, "MPI_Send();"),
            MPISuggestion("MPI_Recv", 3, "MPI_Recv();"),
        ]
        assert suggestions_by_function(suggestions) == {"MPI_Send": 2, "MPI_Recv": 1}


class TestApplySuggestions:
    def test_roundtrip_restores_all_calls(self, pi_source):
        stripped = remove_mpi_calls(pi_source).stripped_code
        suggestions = extract_suggestions(stripped, pi_source)
        rebuilt = apply_suggestions(stripped, suggestions)
        counts = evaluate_program(rebuilt, pi_source, line_tolerance=1)
        assert counts.fn == 0
        assert counts.recall == 1.0

    def test_indentation_copied_from_anchor(self):
        original = "int main() {\n    int x = 1;\n}\n"
        suggestion = MPISuggestion("MPI_Init", 2, "MPI_Init(&argc, &argv);")
        rebuilt = apply_suggestions(original, [suggestion])
        assert "    MPI_Init(&argc, &argv);" in rebuilt.splitlines()[2]

    def test_insert_at_top(self):
        original = "int x;\n"
        rebuilt = apply_suggestions(original, [MPISuggestion("MPI_Init", 0, "MPI_Init();")])
        assert rebuilt.splitlines()[0] == "MPI_Init();"


class TestRuleBasedBaseline:
    def test_inserts_canonical_prologue_and_epilogue(self, pi_source):
        stripped = remove_mpi_calls(pi_source).stripped_code
        suggestions = RuleBasedBaseline().suggest(stripped)
        functions = {s.function for s in suggestions}
        assert {"MPI_Init", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Finalize"} <= functions

    def test_uses_declared_rank_and_size_names(self):
        source = (
            "int main(int argc, char **argv) {\n"
            "    int my_rank, nprocs;\n"
            "    return 0;\n"
            "}\n"
        )
        suggestions = RuleBasedBaseline().suggest(source)
        by_function = {s.function: s.statement for s in suggestions}
        assert "&my_rank" in by_function["MPI_Comm_rank"]
        assert "&nprocs" in by_function["MPI_Comm_size"]

    def test_no_main_no_suggestions(self):
        assert RuleBasedBaseline().suggest("int helper(int x) { return x; }") == []

    def test_reduce_heuristic_can_be_disabled(self, pi_source):
        stripped = remove_mpi_calls(pi_source).stripped_code
        with_reduce = RuleBasedBaseline(BaselineConfig(insert_reduce=True)).suggest(stripped)
        without = RuleBasedBaseline(BaselineConfig(insert_reduce=False)).suggest(stripped)
        assert len(without) <= len(with_reduce)
        assert all(s.function != "MPI_Reduce" for s in without)

    def test_baseline_precision_on_pi_program(self, pi_source):
        # The baseline nails Init/rank/size/Finalize for the canonical pi code
        # but cannot invent Send/Recv patterns — recall stays below 1.
        stripped = remove_mpi_calls(pi_source).stripped_code
        predicted = RuleBasedBaseline().predict_code(stripped)
        counts = evaluate_program(predicted, pi_source, line_tolerance=1)
        assert counts.tp >= 3
        assert counts.recall <= 1.0

    def test_baseline_misses_point_to_point(self):
        source = (
            "#include <mpi.h>\n"
            "int main(int argc, char **argv) {\n"
            "    int rank, size;\n"
            "    double value = 1.0;\n"
            "    MPI_Init(&argc, &argv);\n"
            "    MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n"
            "    MPI_Comm_size(MPI_COMM_WORLD, &size);\n"
            "    if (rank == 0) {\n"
            "        MPI_Send(&value, 1, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD);\n"
            "    } else {\n"
            "        MPI_Recv(&value, 1, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n"
            "    }\n"
            "    MPI_Finalize();\n"
            "    return 0;\n"
            "}\n"
        )
        stripped = remove_mpi_calls(source).stripped_code
        predicted = RuleBasedBaseline().predict_code(stripped)
        counts = evaluate_program(predicted, source, line_tolerance=1)
        missed = {name for name, c in counts.per_function.items() if c.fn > 0}
        assert "MPI_Send" in missed or "MPI_Recv" in missed
