"""Shared fixtures: a small corpus, dataset and a tiny trained model.

Expensive artefacts are session-scoped so the whole suite builds them once.
"""

from __future__ import annotations

import pytest

from repro.corpus import MiningConfig, build_corpus
from repro.dataset import build_dataset
from repro.model.config import tiny_config
from repro.mpirical import MPIRical

PI_SOURCE = """#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 1000;
    double h, x, sum, pi;
    sum = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    h = 1.0 / (double) n;
    for (i = rank; i < n; i += size) {
        x = h * ((double) i + 0.5);
        sum += 4.0 / (1.0 + x * x);
    }
    double local = h * sum;
    MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("pi = %f\\n", pi);
    }
    MPI_Finalize();
    return 0;
}
"""


@pytest.fixture(scope="session")
def pi_source() -> str:
    """A standardised MPI pi program (the paper's running example)."""
    return PI_SOURCE


@pytest.fixture(scope="session")
def small_corpus():
    """A small synthetic MPICodeCorpus (about 150 programs)."""
    return build_corpus(MiningConfig(num_repositories=35, seed=101))


@pytest.fixture(scope="session")
def small_dataset(small_corpus):
    """Dataset built from the small corpus with default filters."""
    return build_dataset(small_corpus)


@pytest.fixture(scope="session")
def tiny_model(small_dataset):
    """A tiny MPI-RICAL model trained for one epoch (integration smoke tests)."""
    config = tiny_config()
    config.training.max_steps_per_epoch = 8
    train = small_dataset.splits.train[:40]
    validation = small_dataset.splits.validation[:8]
    return MPIRical.fit(train, validation, config)
