"""Fault-injection harness for the worker pool and its self-healing router.

The fleet tests run the *real* :class:`repro.serving.pool.WorkerPool` and
:class:`repro.serving.router.Router` in-process, but spawn
``tests/chaos_worker.py`` stubs (same wire contract as ``server.py``,
millisecond responses, deliberate failure modes) as the worker subprocesses —
chaos here means real SIGKILLs against real processes under real concurrent
HTTP traffic, without paying a model decode per request.  The end-to-end
drill against full model servers is ``python -m repro.serving.router
--smoke-chaos`` (CI runs it too).

The headline invariants, straight from the pool's contract:

* killing any single worker mid-load loses **zero** accepted requests;
* the pool converges back to N healthy workers on its own;
* a rolling alias swap across the fleet drops zero requests.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving.pool import WorkerPool, allocate_port
from repro.serving.router import (CircuitBreaker, HashRing, Router,
                                  RouterPolicy, make_router)

CHAOS_WORKER = Path(__file__).parent / "chaos_worker.py"


# --------------------------------------------------------------------------
# unit: consistent hashing


def test_hash_ring_orders_every_worker_distinctly():
    ring = HashRing(["w0", "w1", "w2"], replicas=64)
    plan = ring.order("some-cache-key")
    assert sorted(plan) == ["w0", "w1", "w2"]
    # The plan is deterministic: retries must walk the same sequence.
    assert ring.order("some-cache-key") == plan


def test_hash_ring_spreads_keys_and_keeps_them_stable():
    ring = HashRing(["w0", "w1", "w2"], replicas=64)
    first_choice = [ring.order(f"key-{n}")[0] for n in range(600)]
    counts = {worker: first_choice.count(worker) for worker in ("w0", "w1", "w2")}
    # Virtual nodes keep the shards roughly even; 5% is a loose floor that
    # still catches a degenerate (single-point) ring.
    assert all(count >= 30 for count in counts.values()), counts
    # A different ring over the same workers maps keys identically.
    again = HashRing(["w0", "w1", "w2"], replicas=64)
    assert [again.order(f"key-{n}")[0] for n in range(600)] == first_choice


def test_hash_ring_rejects_bad_configs():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["w0", "w0"])


# --------------------------------------------------------------------------
# unit: circuit breaker


def test_circuit_breaker_state_machine():
    clock = [0.0]
    breaker = CircuitBreaker(threshold=3, cooldown=2.0, clock=lambda: clock[0])
    assert breaker.state == "closed"
    assert breaker.allow()
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    assert breaker.record_failure()  # newly tripped on the third
    assert breaker.state == "open"
    assert not breaker.allow()

    clock[0] = 2.5  # past the cooldown: half-open
    assert breaker.state == "half_open"
    assert breaker.allow()       # exactly one probe admitted
    assert not breaker.allow()   # concurrent caller is still rejected
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_circuit_breaker_failed_probe_reopens():
    clock = [0.0]
    breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=lambda: clock[0])
    breaker.record_failure()
    clock[0] = 1.5
    assert breaker.allow()
    breaker.record_failure()  # probe failed: re-open for another cooldown
    assert not breaker.allow()
    clock[0] = 2.0  # 1.5 + 1.0 not yet elapsed
    assert not breaker.allow()
    clock[0] = 2.6
    assert breaker.allow()


def test_circuit_breaker_force_open_honours_retry_after():
    clock = [0.0]
    breaker = CircuitBreaker(threshold=3, cooldown=1.0, clock=lambda: clock[0])
    breaker.force_open(5.0)
    assert not breaker.allow()
    clock[0] = 4.9
    assert not breaker.allow()
    clock[0] = 5.1
    assert breaker.allow()


# --------------------------------------------------------------------------
# unit: affinity keys


def _bare_router() -> Router:
    return Router(endpoints=[("w0", "127.0.0.1", 1), ("w1", "127.0.0.1", 2),
                             ("w2", "127.0.0.1", 3)],
                  policy=RouterPolicy(health_interval=0.0))


def test_affinity_key_is_canonical_not_byte_identity():
    router = _bare_router()
    compact = json.dumps({"code": "int main() { return 0; }\n"}).encode()
    spaced = json.dumps({"code": "int  main( )  {  return 0 ;  }\n"}).encode()
    # Same canonical program (whitespace-only edit): same shard.
    assert router.affinity_key(compact) == router.affinity_key(spaced)
    other = json.dumps({"code": "int main() { return 42; }\n"}).encode()
    assert router.affinity_key(compact) != router.affinity_key(other)


def test_affinity_key_falls_back_to_a_digest_for_garbage():
    router = _bare_router()
    assert router.affinity_key(b"not json") == router.affinity_key(b"not json")
    assert router.affinity_key(b"not json") != router.affinity_key(b"also not")
    # A well-formed body with a non-string code still gets a stable shard.
    weird = json.dumps({"code": 42}).encode()
    assert router.affinity_key(weird) == router.affinity_key(weird)


# --------------------------------------------------------------------------
# fleet fixtures


def _chaos_command(spec):
    return [sys.executable, str(CHAOS_WORKER), "--host", spec.host,
            "--port", str(spec.port), "--worker-id", spec.worker_id,
            "--registry-root", str(spec.registry_root)]


FLEET_POLICY = RouterPolicy(max_attempts=3, connect_timeout=1.0,
                            read_timeout=2.0, backoff_base=0.01,
                            backoff_max=0.05, breaker_threshold=3,
                            breaker_cooldown=0.3, health_interval=0.05,
                            health_timeout=1.0, drain_timeout=5.0,
                            swap_worker_timeout=10.0)


@pytest.fixture()
def fleet(tmp_path):
    """3 chaos-stub workers under the real supervisor + router + HTTP front."""
    pool = WorkerPool(3, _chaos_command, root=tmp_path / "pool",
                      restart_backoff_base=0.1, restart_backoff_max=1.0,
                      poll_interval=0.02)
    pool.start()
    router = Router(pool=pool, policy=FLEET_POLICY, seed=7).start()
    front = make_router(router, port=0, quiet=True)
    host, port = front.server_address[:2]
    threading.Thread(target=front.serve_forever, daemon=True).start()
    assert router.wait_full_strength(20.0), router.health()[1]
    try:
        yield pool, router, f"http://{host}:{port}"
    finally:
        front.shutdown()
        front.server_close()
        router.close()
        pool.stop()


def _post(base: str, path: str, payload: dict, timeout: float = 10.0):
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(base: str, path: str, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(f"{base}{path}",
                                    timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _worker_base(pool: WorkerPool, worker_id: str) -> str:
    spec = {s.worker_id: s for s in pool.specs()}[worker_id]
    return spec.endpoint


def _worker_pid(pool: WorkerPool, worker_id: str) -> int:
    status, body = _get(_worker_base(pool, worker_id), "/healthz")
    assert status == 200, body
    return body["pid"]


# --------------------------------------------------------------------------
# fleet: supervision


def test_supervisor_respawns_a_sigkilled_worker(fleet):
    pool, router, _ = fleet
    old_pid = _worker_pid(pool, "w1")
    assert pool.kill("w1")
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        snapshot = pool.snapshot()
        if snapshot["alive"] == 3:
            workers = {w["id"]: w for w in snapshot["workers"]}
            if workers["w1"]["pid"] not in (None, old_pid):
                break
        time.sleep(0.05)
    snapshot = pool.snapshot()
    workers = {w["id"]: w for w in snapshot["workers"]}
    assert snapshot["alive"] == 3
    assert workers["w1"]["pid"] != old_pid
    assert workers["w1"]["restarts"] == 1
    assert workers["w1"]["last_exit_code"] is not None
    # Signal-kill exit codes surface as negative waitpid statuses.
    assert workers["w1"]["last_exit_code"] < 0
    assert router.wait_full_strength(15.0), router.health()[1]


def test_supervisor_backoff_is_exponential_and_capped(tmp_path):
    pool = WorkerPool(1, _chaos_command, root=tmp_path / "pool",
                      restart_backoff_base=0.2, restart_backoff_max=3.0,
                      stable_seconds=30.0)
    assert pool._backoff(1) == pytest.approx(0.2)
    assert pool._backoff(2) == pytest.approx(0.4)
    assert pool._backoff(3) == pytest.approx(0.8)
    assert pool._backoff(10) == pytest.approx(3.0)  # capped


# --------------------------------------------------------------------------
# fleet: routing


def test_affinity_routes_equal_keys_to_one_worker(fleet):
    _, _, base = fleet
    body = {"code": "int main() { return 7; }\n"}
    served_by = set()
    for _ in range(5):
        status, payload = _post(base, "/v1/advise", body)
        assert status == 200, payload
        served_by.add(payload["worker"])
    assert len(served_by) == 1
    # Distinct programs spread over the fleet.
    spread = set()
    for n in range(16):
        status, payload = _post(base, "/v1/advise",
                                {"code": f"int main() {{ return {n}; }}\n"})
        assert status == 200, payload
        spread.add(payload["worker"])
    assert len(spread) >= 2, spread


def test_legacy_and_v1_share_shards_and_contract(fleet):
    _, _, base = fleet
    code = "int main() { return 3; }\n"
    status, v1 = _post(base, "/v1/advise", {"code": code})
    assert status == 200 and v1["api_version"] == "v1"
    status, legacy = _post(base, "/advise", {"code": code})
    assert status == 200 and "generated_code" in legacy
    # Greedy default on both spellings → same canonical key → same worker.
    assert legacy["worker"] == v1["worker"]


def test_chaos_kill_one_worker_loses_zero_requests(fleet):
    """The headline differential: SIGKILL any single worker under concurrent
    mixed traffic; every accepted request still answers 2xx; the pool
    converges back to full strength."""
    pool, router, base = fleet
    codes = [f"int main() {{ return {n}; }}\n" for n in range(6)]
    results: list[tuple[int, object]] = []
    results_lock = threading.Lock()
    done = [0]

    def traffic(index: int) -> None:
        for n in range(15):
            path = "/advise" if n % 3 == 2 else "/v1/advise"
            status, payload = _post(base, path,
                                    {"code": codes[(index + n) % len(codes)]})
            with results_lock:
                results.append((status, payload))
                done[0] += 1

    def killer() -> None:
        while done[0] < 15:
            time.sleep(0.002)
        pool.kill("w0")

    threads = [threading.Thread(target=traffic, args=(i,)) for i in range(6)]
    kill_thread = threading.Thread(target=killer)
    kill_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    kill_thread.join(10.0)

    bad = [entry for entry in results if entry[0] != 200]
    assert not bad, f"{len(bad)} failed request(s), e.g. {bad[:3]}"
    assert len(results) == 90
    assert router.wait_full_strength(15.0), router.health()[1]
    snapshot = router.metrics.snapshot()
    assert snapshot["exhausted_total"] == 0, snapshot


def test_wedged_worker_times_out_and_fails_over(fleet):
    """A wedged (alive but unresponsive) worker is the nastier failure mode:
    no connect error, just silence.  The per-attempt read timeout must cut
    it off and the request must still answer from another replica."""
    pool, router, base = fleet
    # Find a program whose home shard is the worker we are about to wedge.
    victim = router.plan(router.affinity_key(
        json.dumps({"code": "int main() { return 0; }\n"}).encode()))[0]
    code = None
    for n in range(64):
        candidate = f"int main() {{ return {n}; }}\n"
        key = router.affinity_key(json.dumps({"code": candidate}).encode())
        if router.plan(key)[0].worker_id == victim.worker_id:
            code = candidate
            break
    assert code is not None
    status, _ = _post(_worker_base(pool, victim.worker_id), "/chaos/wedge", {})
    assert status == 200
    try:
        started = time.monotonic()
        status, payload = _post(base, "/v1/advise", {"code": code},
                                timeout=30.0)
        elapsed = time.monotonic() - started
        assert status == 200, payload
        assert payload["worker"] != victim.worker_id
        # One read timeout (2s policy) + failover, not an unbounded hang.
        assert elapsed < 15.0
        assert router.metrics.snapshot()["failovers_total"] >= 1
    finally:
        _post(_worker_base(pool, victim.worker_id), "/chaos/unwedge", {})


class _LiveStub(BaseHTTPRequestHandler):
    """Minimal in-process worker for breaker unit tests."""

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_POST(self) -> None:  # noqa: N802
        self.rfile.read(int(self.headers.get("Content-Length", "0")))
        body = json.dumps({"worker": "live"}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def test_breaker_trips_on_a_dead_worker_then_skips_it():
    """Passive failure accounting: a dead replica trips its breaker on the
    request path, and subsequent dispatches skip it without paying a
    connect attempt — while every request still answers via failover."""
    live = ThreadingHTTPServer(("127.0.0.1", 0), _LiveStub)
    live.daemon_threads = True
    threading.Thread(target=live.serve_forever, daemon=True).start()
    dead_port = allocate_port()  # bound-then-released: connect refused
    router = Router(endpoints=[("w0", "127.0.0.1", dead_port),
                               ("w1", "127.0.0.1", live.server_address[1])],
                    policy=RouterPolicy(max_attempts=3, connect_timeout=0.5,
                                        read_timeout=2.0, backoff_base=0.01,
                                        backoff_max=0.02, breaker_threshold=1,
                                        breaker_cooldown=60.0,
                                        health_interval=0.0))
    try:
        # A key homed on the dead worker (no probes: plan is ring order).
        key = next(k for k in (f"k{n}" for n in range(256))
                   if router.plan(k)[0].worker_id == "w0")
        outcome = router.dispatch("POST", "/v1/advise", b"{}", key=key)
        assert outcome.status == 200
        assert json.loads(outcome.body)["worker"] == "live"
        snapshot = router.metrics.snapshot()
        assert snapshot["breaker_trips_total"] == 1
        assert snapshot["failovers_total"] == 1
        assert snapshot["failures_by_worker"] == {"w0": 1}
        assert router.client("w0").breaker.state == "open"
        # Force both into the fallback tier so the plan leads with w0
        # again; its open breaker must be skipped, not retried.
        router.client("w1").healthy = False
        outcome = router.dispatch("POST", "/v1/advise", b"{}", key=key)
        assert outcome.status == 200
        snapshot = router.metrics.snapshot()
        assert snapshot["breaker_skips_total"] == 1
        assert snapshot["failures_by_worker"] == {"w0": 1}  # not retried
    finally:
        live.shutdown()
        live.server_close()


def test_exhausted_dispatch_answers_503_with_retry_after():
    dead = [allocate_port() for _ in range(2)]
    router = Router(endpoints=[("w0", "127.0.0.1", dead[0]),
                               ("w1", "127.0.0.1", dead[1])],
                    policy=RouterPolicy(max_attempts=2, connect_timeout=0.3,
                                        read_timeout=1.0, backoff_base=0.01,
                                        backoff_max=0.02,
                                        health_interval=0.0))
    outcome = router.dispatch("POST", "/v1/advise", b"{}", key="k")
    assert outcome.status == 503
    assert json.loads(outcome.body)["error"]["code"] == "unavailable"
    assert outcome.retry_after is not None
    assert router.metrics.snapshot()["exhausted_total"] == 1


# --------------------------------------------------------------------------
# fleet: jobs


def test_job_submit_is_namespaced_and_polls_pin_to_the_owner(fleet):
    _, _, base = fleet
    status, job = _post(base, "/v1/advise/batch",
                        {"items": [{"code": "int main() { return 0; }\n"},
                                   {"code": "int main() { return 1; }\n"}]})
    assert status == 202, job
    assert job["job_id"].split("-", 1)[0] in ("w0", "w1", "w2")
    assert "-job-" in job["job_id"]
    status, polled = _get(base, f"/v1/jobs/{job['job_id']}")
    assert status == 200, polled
    assert polled["job_id"] == job["job_id"]  # re-prefixed on the way out
    assert polled["status"] == "done" and len(polled["results"]) == 2
    # The owning worker really holds the job (namespacing is not cosmetic).
    assert polled["worker"] == job["job_id"].split("-", 1)[0]


def test_unprefixed_or_unknown_job_ids_are_404(fleet):
    _, _, base = fleet
    status, body = _get(base, "/v1/jobs/job-1")
    assert status == 404 and body["error"]["code"] == "not_found"
    status, body = _get(base, "/v1/jobs/w9-job-1")
    assert status == 404
    status, body = _get(base, "/v1/jobs/w0-job-999")
    assert status == 404


# --------------------------------------------------------------------------
# fleet: drain + rolling swap


def test_drain_stops_routing_then_bounces_the_worker(fleet):
    pool, router, base = fleet
    old_pid = _worker_pid(pool, "w1")
    status, result = _post(base, "/admin/workers/w1/drain", {}, timeout=30.0)
    assert status == 200, result
    assert result["acknowledged"] and result["drained"] and result["restarted"]
    assert router.wait_full_strength(15.0), router.health()[1]
    assert _worker_pid(pool, "w1") != old_pid
    # Traffic flows throughout and after.
    for n in range(6):
        status, payload = _post(base, "/v1/advise",
                                {"code": f"int main() {{ return {n}; }}\n"})
        assert status == 200, payload


def test_rolling_swap_converges_with_zero_drops(fleet):
    pool, router, base = fleet
    status, loaded = _post(base, "/v1/models/alt/load", {}, timeout=30.0)
    assert status == 200, loaded
    assert len(loaded["workers"]) == 3

    results: list[tuple[int, object]] = []
    results_lock = threading.Lock()
    stop = threading.Event()

    def traffic() -> None:
        n = 0
        while not stop.is_set():
            status, payload = _post(base, "/v1/advise",
                                    {"code": f"int main() {{ return {n % 4}; }}\n"})
            with results_lock:
                results.append((status, payload))
            n += 1

    threads = [threading.Thread(target=traffic) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        status, swap = _post(base, "/v1/models/alt/swap", {}, timeout=60.0)
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert status == 200, swap
    assert swap["converged"] and swap["current"] == "alt@stub1"
    assert [w["worker"] for w in swap["workers"]] == ["w0", "w1", "w2"]
    bad = [entry for entry in results if entry[0] != 200]
    assert not bad, f"{len(bad)} dropped request(s) during swap, e.g. {bad[:3]}"
    # Every replica now serves the swapped alias.
    status, models = _get(base, "/v1/models")
    assert status == 200 and models["default"] == "alt@stub1"


# --------------------------------------------------------------------------
# fleet: observability


def test_router_healthz_and_metrics_expose_the_fleet(fleet):
    pool, router, base = fleet
    status, health = _get(base, "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert {w["id"] for w in health["workers"]} == {"w0", "w1", "w2"}
    assert all(w["healthy"] and not w["draining"] for w in health["workers"])
    assert health["pool"]["alive"] == 3

    _post(base, "/v1/advise", {"code": "int main() { return 0; }\n"})
    status, metrics = _get(base, "/metrics")
    assert status == 200
    assert metrics["router"]["requests_total"] >= 1
    assert metrics["router"]["exhausted_total"] == 0
    assert sum(metrics["router"]["forwards_by_worker"].values()) >= 1


def test_streaming_relays_ndjson_through_the_router(fleet):
    _, _, base = fleet
    request = urllib.request.Request(
        f"{base}/v1/advise/stream",
        data=json.dumps({"code": "int main() { return 0; }\n"}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10.0) as response:
        assert response.status == 200
        assert "x-ndjson" in response.headers.get("Content-Type", "")
        lines = [json.loads(line) for line in response.read().splitlines()
                 if line]
    assert lines[-1]["type"] == "final"
    assert any(line["type"] == "token" for line in lines)
