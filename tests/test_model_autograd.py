"""Gradient-correctness tests for the autograd engine."""

import numpy as np
import pytest

from repro.model.autograd import Tensor, concat, embedding_lookup, numerical_gradient, parameter


def _check_gradient(fn, shape, seed=0, tolerance=1e-6):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=shape), requires_grad=True)
    out = fn(x)
    out.backward()
    numeric = numerical_gradient(fn, Tensor(x.data.copy()))
    assert np.allclose(x.grad, numeric, atol=tolerance), (
        f"max error {np.abs(x.grad - numeric).max()}"
    )


class TestElementwiseGradients:
    def test_add_mul(self):
        _check_gradient(lambda t: ((t * 3.0) + (t * t)).sum(), (4, 3))

    def test_sub_div(self):
        _check_gradient(lambda t: ((t - 2.0) / (t * t + 5.0)).sum(), (3, 3))

    def test_pow(self):
        _check_gradient(lambda t: (t ** 3).sum(), (5,))

    def test_exp_log(self):
        _check_gradient(lambda t: ((t.exp() + 2.0).log()).sum(), (4,))

    def test_sqrt(self):
        _check_gradient(lambda t: ((t * t + 1.0).sqrt()).sum(), (4,))

    def test_tanh_relu_gelu(self):
        _check_gradient(lambda t: t.tanh().sum(), (6,))
        _check_gradient(lambda t: (t + 0.3).relu().sum(), (6,), seed=3)
        _check_gradient(lambda t: t.gelu().sum(), (6,), tolerance=1e-5)

    def test_neg(self):
        _check_gradient(lambda t: (-t * 2.0).sum(), (3, 2))


class TestBroadcastingGradients:
    def test_broadcast_add(self):
        rng = np.random.default_rng(1)
        bias = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))
        out = (x + bias).sum()
        out.backward()
        assert bias.grad.shape == (1, 4)
        assert np.allclose(bias.grad, np.ones((1, 4)) * 3)

    def test_broadcast_mul_scalar_like(self):
        scale = Tensor(np.array([2.0]), requires_grad=True)
        x = Tensor(np.arange(6.0).reshape(2, 3))
        (x * scale).sum().backward()
        assert scale.grad.shape == (1,)
        assert np.isclose(scale.grad[0], x.data.sum())


class TestMatmulAndShapes:
    def test_matmul_gradients(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a.matmul(b)).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b.data.T)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 2)))

    def test_batched_matmul(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_transpose_reshape(self):
        _check_gradient(lambda t: (t.transpose(1, 0).reshape(12) * 2.0).sum(), (3, 4))

    def test_sum_axis_keepdims(self):
        _check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (3, 4))

    def test_mean(self):
        _check_gradient(lambda t: t.mean(axis=-1, keepdims=True).sum(), (2, 5))


class TestSoftmaxAndMasking:
    def test_softmax_gradient(self):
        _check_gradient(lambda t: (t.softmax(axis=-1) * t).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        _check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.3).sum(), (2, 5))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = x.softmax(axis=-1).data
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_masked_fill_blocks_gradient(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        mask = np.array([[True, False, False], [False, False, True]])
        (x.masked_fill(mask, -1e9) * 2.0).sum().backward()
        assert x.grad[0, 0] == 0.0 and x.grad[1, 2] == 0.0
        assert x.grad[0, 1] == 2.0

    def test_dropout_train_and_eval(self):
        x = Tensor(np.ones((100,)), requires_grad=True)
        rng = np.random.default_rng(0)
        dropped = x.dropout(0.5, rng, training=True)
        assert (dropped.data == 0).any()
        same = x.dropout(0.5, rng, training=False)
        assert same is x


class TestStructuralOps:
    def test_embedding_lookup_scatter_add(self):
        weight = parameter(np.arange(12.0).reshape(4, 3))
        ids = np.array([[0, 1], [1, 3]])
        out = embedding_lookup(weight, ids)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # Row 1 is used twice, rows 0 and 3 once, row 2 never.
        assert np.allclose(weight.grad[1], 2.0)
        assert np.allclose(weight.grad[2], 0.0)

    def test_concat_gradient_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * np.arange(5.0)).sum().backward()
        assert np.allclose(a.grad, [[0, 1], [0, 1]])
        assert np.allclose(b.grad, [[2, 3, 4], [2, 3, 4]])

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        z = (y * 3.0).sum()
        z.backward()
        assert x.grad is None

    def test_gradient_accumulates_across_backward_calls(self):
        x = parameter(np.ones(3))
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, 5.0)

    def test_zero_grad(self):
        x = parameter(np.ones(3))
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self):
        x = parameter(np.array([2.0]))
        y = x * 3.0
        z = (y * y + y).sum()
        z.backward()
        # dz/dx = (2*y + 1) * 3 = (12 + 1) * 3 = 39
        assert np.isclose(x.grad[0], 39.0)
