"""Tests for the code generator / standardiser."""

import pytest

from repro.clang.codegen import CodeGenerator, generate_code, standardize
from repro.clang.parser import parse_source, parses_cleanly


class TestRoundTrip:
    def test_pi_program_round_trips(self, pi_source):
        unit = parse_source(pi_source)
        regenerated = generate_code(unit)
        assert parses_cleanly(regenerated)

    def test_idempotent_standardisation(self, pi_source):
        once = standardize(pi_source)
        twice = standardize(once)
        assert once == twice

    def test_messy_formatting_is_normalised(self):
        messy = (
            "#include <stdio.h>\n"
            "int main(  )   {int x=1;   if(x>0)\n\n\n   { x = x+ 1 ;}  return x;}"
        )
        clean = standardize(messy)
        assert "int x = 1;" in clean
        assert "if (x > 0) {" in clean
        assert clean.count("\n\n") == 0

    def test_preserves_include_directives(self, pi_source):
        clean = standardize(pi_source)
        assert "#include <mpi.h>" in clean
        assert "#include <stdio.h>" in clean

    def test_statement_per_line(self, pi_source):
        clean = standardize(pi_source)
        for line in clean.splitlines():
            # no two statements share one line in standardised output
            assert line.count(";") <= 1 or "for (" in line


class TestStatements:
    def _roundtrip(self, body: str) -> str:
        return standardize("int main() {\n" + body + "\n}")

    def test_for_loop(self):
        out = self._roundtrip("for (i = 0; i < n; i++) { total += i; }")
        assert "for (i = 0; i < n; i++) {" in out

    def test_while_loop(self):
        out = self._roundtrip("while (!done) { step(); }")
        assert "while (!done) {" in out

    def test_do_while(self):
        out = self._roundtrip("do { x--; } while (x > 0);")
        assert "} while (x > 0);" in out

    def test_if_else(self):
        out = self._roundtrip("if (rank == 0) { a = 1; } else { a = 2; }")
        assert "} else {" in out

    def test_switch_case(self):
        out = self._roundtrip("switch (m) { case 1: x = 1; break; default: x = 0; }")
        assert "switch (m) {" in out
        assert "case 1:" in out
        assert "default:" in out

    def test_return_without_value(self):
        out = self._roundtrip("return;")
        assert "return;" in out

    def test_array_declaration_with_init_list(self):
        out = self._roundtrip("int periods[2] = {1, 0};")
        assert "int periods[2] = {1, 0};" in out

    def test_pointer_declaration(self):
        out = self._roundtrip("double *buf = NULL;")
        assert "double *buf = NULL;" in out


class TestExpressions:
    def _roundtrip_expr(self, expr: str) -> str:
        return standardize(f"int main() {{ result = {expr}; }}")

    def test_mpi_call_arguments_preserved(self):
        out = standardize(
            "int main() { MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD); }"
        )
        assert "MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);" in out

    def test_cast_and_sizeof(self):
        out = self._roundtrip_expr("(double *) malloc(n * sizeof(double))")
        assert "(double *) malloc(n * sizeof(double))" in out

    def test_ternary(self):
        out = self._roundtrip_expr("a > b ? a : b")
        assert "?" in out and ":" in out

    def test_string_literal_preserved(self):
        out = standardize('int main() { printf("pi = %f\\n", pi); }')
        assert '"pi = %f\\n"' in out

    def test_nested_subscripts_and_members(self):
        out = self._roundtrip_expr("grid[i][j]")
        assert "grid[i][j]" in out

    def test_unary_operators(self):
        out = self._roundtrip_expr("-x + !flag")
        assert "-x + !flag" in out


class TestCodeGeneratorDirect:
    def test_generate_expression(self):
        from repro.clang import ast_nodes as ast

        expr = ast.BinaryOp("+", ast.Identifier("a"), ast.Literal("1"))
        assert CodeGenerator().expression(expr) == "a + 1"

    def test_custom_indent(self):
        unit = parse_source("int main() { return 0; }")
        text = CodeGenerator(indent="  ").generate(unit)
        assert "\n  return 0;" in text

    def test_function_without_params_emits_void(self):
        unit = parse_source("int main() { return 0; }")
        assert "int main(void) {" in generate_code(unit)
