"""Tests for BLEU, METEOR, ROUGE-L and exact-match accuracy."""

import pytest

from repro.evaluation.accuracy import exact_match, exact_match_accuracy
from repro.evaluation.bleu import corpus_bleu, modified_precision, sentence_bleu
from repro.evaluation.meteor import corpus_meteor, meteor
from repro.evaluation.rouge import corpus_rouge_l, lcs_length, rouge_l


class TestBLEU:
    def test_identical_sequences_score_one(self):
        tokens = list("abcdefgh")
        assert sentence_bleu(tokens, tokens) == pytest.approx(1.0)

    def test_disjoint_sequences_score_near_zero(self):
        assert sentence_bleu(list("aaaa"), list("bbbb")) < 1e-6

    def test_modified_precision_clipping(self):
        matches, total = modified_precision(["the", "the", "the"], ["the", "cat"], 1)
        assert matches == 1 and total == 3

    def test_brevity_penalty(self):
        reference = list("abcdefghij")
        short = sentence_bleu(list("abcde"), reference)
        full = sentence_bleu(reference, reference)
        assert short < full

    def test_corpus_bleu_pools_statistics(self):
        candidates = [list("abcd"), list("wxyz")]
        references = [list("abcd"), list("wxyz")]
        assert corpus_bleu(candidates, references) == pytest.approx(1.0)

    def test_corpus_bleu_validates_lengths(self):
        with pytest.raises(ValueError):
            corpus_bleu([list("ab")], [])

    def test_partial_overlap_between_zero_and_one(self):
        score = sentence_bleu(list("abcdxyzw"), list("abcdefgh"))
        assert 0.0 < score < 1.0


class TestROUGE:
    def test_lcs_length(self):
        assert lcs_length("abcde", "ace") == 3
        assert lcs_length("abc", "xyz") == 0
        assert lcs_length("", "abc") == 0

    def test_identical_sequences_score_one(self):
        assert rouge_l(list("hello"), list("hello")) == pytest.approx(1.0)

    def test_subsequence_scores_between_zero_and_one(self):
        score = rouge_l(list("abcdefgh"), list("axcxexgx"))
        assert 0.0 < score < 1.0

    def test_corpus_rouge_is_mean(self):
        perfect = list("abc")
        poor = list("xyz")
        score = corpus_rouge_l([perfect, poor], [perfect, list("abc")])
        assert score == pytest.approx(rouge_l(perfect, perfect) / 2 +
                                      rouge_l(poor, list("abc")) / 2)


class TestMETEOR:
    def test_identical_sequences_score_high(self):
        tokens = list("abcdefgh")
        assert meteor(tokens, tokens) > 0.9

    def test_reordered_sequences_penalised(self):
        reference = list("abcdefgh")
        reordered = list("efghabcd")
        assert meteor(reordered, reference) < meteor(reference, reference)

    def test_no_overlap_scores_zero(self):
        assert meteor(list("abc"), list("xyz")) == 0.0

    def test_empty_candidate_scores_zero(self):
        assert meteor([], list("abc")) == 0.0

    def test_corpus_meteor_mean(self):
        a, b = list("abcd"), list("wxyz")
        score = corpus_meteor([a, b], [a, b])
        assert score == pytest.approx((meteor(a, a) + meteor(b, b)) / 2)


class TestExactMatch:
    def test_exact_match_true_false(self):
        assert exact_match(["a", "b"], ["a", "b"])
        assert not exact_match(["a"], ["a", "b"])

    def test_accuracy_fraction(self):
        candidates = [["a"], ["b"], ["c"]]
        references = [["a"], ["x"], ["c"]]
        assert exact_match_accuracy(candidates, references) == pytest.approx(2 / 3)

    def test_accuracy_validates_input(self):
        with pytest.raises(ValueError):
            exact_match_accuracy([], [])


class TestMetricOrdering:
    def test_better_candidate_scores_higher_on_all_metrics(self):
        reference = "int main ( ) { MPI_Init ( ) ; return 0 ; }".split()
        good = "int main ( ) { MPI_Init ( ) ; return 0 ; }".split()
        bad = "void helper ( ) { exit ( 1 ) ; }".split()
        assert sentence_bleu(good, reference) > sentence_bleu(bad, reference)
        assert rouge_l(good, reference) > rouge_l(bad, reference)
        assert meteor(good, reference) > meteor(bad, reference)
