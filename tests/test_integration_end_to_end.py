"""End-to-end integration tests across subsystem boundaries."""

from repro.benchprograms import BENCHMARK_PROGRAMS, check_for
from repro.corpus import summarize
from repro.dataset.removal import remove_mpi_calls
from repro.evaluation.classification import evaluate_program
from repro.evaluation.report import evaluate_benchmark
from repro.mpirical.baseline import RuleBasedBaseline
from repro.mpirical.suggestions import apply_suggestions, extract_suggestions
from repro.mpisim import validate_program


class TestCorpusToDataset:
    def test_dataset_statistics_consistent_with_corpus(self, small_corpus, small_dataset):
        stats = summarize(small_corpus)
        assert stats.total_programs >= len(small_dataset.examples)
        assert stats.common_core["MPI_Init"] >= len(small_dataset.examples) * 0.5

    def test_oracle_roundtrip_scores_perfectly(self, small_dataset):
        """Removing MPI calls and re-inserting them from the label must give a
        perfect Table II classification score — the evaluation's sanity anchor."""
        for example in small_dataset.splits.test[:10]:
            suggestions = extract_suggestions(example.source_code, example.target_code)
            rebuilt = apply_suggestions(example.source_code, suggestions)
            counts = evaluate_program(rebuilt, example.target_code, line_tolerance=1)
            assert counts.recall == 1.0
            assert counts.precision == 1.0


class TestBaselineOnNumericalBenchmark:
    def test_baseline_produces_partial_table3(self):
        rows = []
        for program in BENCHMARK_PROGRAMS[:4]:
            stripped = remove_mpi_calls(program.source).stripped_code
            predicted = RuleBasedBaseline().predict_code(stripped)
            rows.append((program.name, predicted, program.source))
        table = evaluate_benchmark(rows)
        assert table.total is not None
        # The rules recover some of the common core but never everything.
        assert 0.0 < table.total.recall < 1.0


class TestSimulatorValidatesOracleRewrites:
    def test_reconstructed_benchmark_programs_still_run(self):
        """Strip MPI from a benchmark program, re-apply the ground truth, and
        check the result still executes and produces the right answer."""
        for program in BENCHMARK_PROGRAMS[:3]:
            stripped = remove_mpi_calls(program.source).stripped_code
            suggestions = extract_suggestions(stripped, program.source)
            rebuilt = apply_suggestions(stripped, suggestions)
            verdict = validate_program(rebuilt, num_ranks=program.num_ranks,
                                       check=check_for(program.name).check)
            assert verdict.valid, f"{program.name}: {verdict.message}"
