"""repro.api v1 contract: round-trips, strict validation, error envelope.

The property tests hold **every registered strategy** to the wire contract:
``AdviseRequest.from_dict(r.to_dict()) == r`` over randomly drawn valid
parameters, so a new strategy cannot register without a lossless
serialisation.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import (
    AdviseRequest,
    AdviseResponse,
    ApiError,
    parse_legacy_advise,
    strategy_matrix,
)
from repro.model.decoding import (
    MAX_BEAM_SIZE,
    BeamStrategy,
    GreedyStrategy,
    SampleStrategy,
    StrategyParamError,
    merge_legacy_overrides,
    registered_strategies,
    strategy_from_dict,
    strategy_from_generation,
)
from repro.model.generation import GenerationConfig

CODE = "int main(int argc, char **argv) { return 0; }\n"

# Finite, non-degenerate floats for strategy knobs (the contract rejects
# NaN/inf separately).
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)


def valid_strategies():
    """A hypothesis strategy drawing valid instances of every registered
    DecodingStrategy — the registry is the source of truth, so adding a
    strategy automatically adds it to the round-trip property."""
    assert set(registered_strategies()) == {"greedy", "beam", "sample"}
    return st.one_of(
        st.just(GreedyStrategy()),
        st.builds(BeamStrategy,
                  beam_size=st.integers(min_value=1, max_value=MAX_BEAM_SIZE),
                  length_penalty=finite.filter(lambda x: x >= 0)),
        st.builds(SampleStrategy,
                  temperature=finite.filter(lambda x: x > 0),
                  top_k=st.integers(min_value=0, max_value=64),
                  top_p=finite.filter(lambda x: 0 < x <= 1),
                  seed=st.integers(min_value=0, max_value=2**31)),
    )


# ------------------------------------------------------------- round-trips


@given(strategy=valid_strategies())
def test_every_registered_strategy_roundtrips_through_request_dict(strategy):
    request = AdviseRequest(code=CODE, strategy=strategy)
    assert AdviseRequest.from_dict(request.to_dict()) == request


@given(strategy=valid_strategies())
def test_strategy_wire_form_roundtrips(strategy):
    assert strategy_from_dict(strategy.to_dict()) == strategy


@given(strategy=valid_strategies())
def test_model_reference_roundtrips_and_stays_off_the_wire_when_absent(strategy):
    """v1.1: an explicit model reference round-trips; omitting it keeps the
    request dict byte-identical to v1.0 (no "model" key at all)."""
    plain = AdviseRequest(code=CODE, strategy=strategy)
    assert "model" not in plain.to_dict()
    assert AdviseRequest.from_dict(plain.to_dict()).model is None

    pinned = AdviseRequest(code=CODE, strategy=strategy,
                           model="advisor@abcdef012345")
    assert pinned.to_dict()["model"] == "advisor@abcdef012345"
    assert AdviseRequest.from_dict(pinned.to_dict()) == pinned


@pytest.mark.parametrize("model, status", [
    (7, 400),          # wrong type: malformed request
    ("   ", 400),      # empty reference: malformed request
])
def test_invalid_model_references_are_rejected(model, status):
    with pytest.raises(ApiError) as excinfo:
        AdviseRequest.from_dict({"code": CODE, "model": model})
    assert excinfo.value.status == status
    assert excinfo.value.field == "model"


def test_batch_parse_merges_defaults_and_is_atomic():
    from repro.api import MAX_BATCH_ITEMS, parse_batch_advise

    requests = parse_batch_advise({
        "model": "canary",
        "strategy": {"name": "beam", "beam_size": 2},
        "items": [{"code": CODE},
                  {"code": CODE, "strategy": "greedy", "model": "default"}],
    })
    assert requests[0].model == "canary"
    assert requests[0].strategy.to_dict()["name"] == "beam"
    assert requests[1].model == "default"
    assert requests[1].strategy.to_dict()["name"] == "greedy"

    with pytest.raises(ApiError) as excinfo:
        parse_batch_advise({"items": [{"code": CODE}, {"oops": 1}]})
    assert excinfo.value.status == 400
    assert excinfo.value.field.startswith("items[1]")

    too_many = {"items": [{"code": CODE}] * (MAX_BATCH_ITEMS + 1)}
    with pytest.raises(ApiError) as excinfo:
        parse_batch_advise(too_many)
    assert excinfo.value.status == 422


@given(strategy=valid_strategies())
def test_canonical_form_is_injective_over_drawn_params(strategy):
    """The canonical string embeds every parameter at full repr precision,
    so it reconstructs equality: equal canonicals <=> equal strategies."""
    twin = strategy_from_dict(strategy.to_dict())
    assert twin.canonical() == strategy.canonical()


@given(strategy=valid_strategies())
def test_response_roundtrips_through_dict(strategy):
    response = AdviseResponse(
        generated_code="int main() {}\n",
        advice=({"function": "MPI_Init", "insert_after_line": 1,
                 "statement": "MPI_Init(&argc, &argv);", "confidence": "high",
                 "note": "", "rendered": "[high] ..."},),
        diagnostics=("warning: something",),
        strategy=strategy,
        cached=True,
        latency_ms=1.25,
        cache_key="abc123",
    )
    assert AdviseResponse.from_dict(response.to_dict()) == response


def test_strategy_matrix_lists_every_registered_strategy():
    matrix = strategy_matrix()
    assert set(matrix) == set(registered_strategies())
    for name, defaults in matrix.items():
        assert defaults["name"] == name


# -------------------------------------------------------- strict validation


def test_unknown_top_level_field_is_rejected_by_name():
    with pytest.raises(ApiError) as excinfo:
        AdviseRequest.from_dict({"code": CODE, "beam_size": 4})
    assert excinfo.value.status == 400
    assert excinfo.value.field == "beam_size"


def test_unknown_strategy_parameter_is_rejected_by_name():
    with pytest.raises(ApiError) as excinfo:
        AdviseRequest.from_dict(
            {"code": CODE, "strategy": {"name": "greedy", "temperature": 1.0}})
    assert excinfo.value.status == 400
    assert excinfo.value.field == "temperature"


def test_missing_code_is_a_400():
    with pytest.raises(ApiError) as excinfo:
        AdviseRequest.from_dict({"strategy": "greedy"})
    assert excinfo.value.status == 400
    assert excinfo.value.field == "code"


def test_bare_strategy_name_string_is_accepted():
    request = AdviseRequest.from_dict({"code": CODE, "strategy": "sample"})
    assert request.strategy == SampleStrategy()


@pytest.mark.parametrize("params, status, field", [
    ({"name": "beam", "beam_size": 0}, 422, "beam_size"),
    ({"name": "beam", "beam_size": MAX_BEAM_SIZE + 1}, 422, "beam_size"),
    ({"name": "beam", "beam_size": 2.5}, 400, "beam_size"),
    ({"name": "beam", "length_penalty": float("nan")}, 422, "length_penalty"),
    ({"name": "beam", "length_penalty": -0.1}, 422, "length_penalty"),
    ({"name": "sample", "temperature": 0}, 422, "temperature"),
    ({"name": "sample", "temperature": float("inf")}, 422, "temperature"),
    ({"name": "sample", "top_k": -1}, 422, "top_k"),
    ({"name": "sample", "top_k": True}, 400, "top_k"),
    ({"name": "sample", "top_p": 0.0}, 422, "top_p"),
    ({"name": "sample", "top_p": 1.5}, 422, "top_p"),
    ({"name": "sample", "seed": -3}, 422, "seed"),
    ({"name": "sample", "seed": "lucky"}, 400, "seed"),
    ({"name": "nope"}, 400, "strategy.name"),
])
def test_invalid_strategy_params_carry_status_and_field(params, status, field):
    """NaN/inf/negative rejection lives in the one validate path: 422 for
    out-of-range values, 400 for type errors, always naming the field."""
    with pytest.raises(ApiError) as excinfo:
        AdviseRequest.from_dict({"code": CODE, "strategy": params})
    assert excinfo.value.status == status
    assert excinfo.value.field == field
    payload = excinfo.value.to_dict()
    assert set(payload["error"]) == {"code", "message", "field"}
    assert payload["error"]["field"] == field


def test_error_envelope_shape():
    error = ApiError.invalid_parameter('"x" out of range', field="x")
    assert error.to_dict() == {"error": {"code": "invalid_parameter",
                                         "message": '"x" out of range',
                                         "field": "x"}}


# ----------------------------------------------------------- legacy mapping


def test_legacy_overrides_merge_exactly_like_the_old_resolver():
    """merge_legacy_overrides is the one implementation of the pre-v1
    resolution: partial overrides keep the other knob from the base."""
    base = GenerationConfig(max_length=50, beam_size=3, length_penalty=0.7)
    assert merge_legacy_overrides(base, None, None) == base
    merged = merge_legacy_overrides(base, 4, None)
    assert (merged.beam_size, merged.length_penalty, merged.max_length) == \
        (4, 0.7, 50)
    merged = merge_legacy_overrides(base, None, 0.9)
    assert (merged.beam_size, merged.length_penalty) == (3, 0.9)
    # beam_size=1 merges, then normalises to greedy at the strategy level.
    assert strategy_from_generation(merge_legacy_overrides(base, 1, 0.9)) == \
        GreedyStrategy()
    with pytest.raises(StrategyParamError):
        merge_legacy_overrides(base, 0, None)
    with pytest.raises(StrategyParamError):
        merge_legacy_overrides(base, None, float("nan"))


def test_parse_legacy_advise_returns_raw_validated_overrides():
    """The parser keeps absent fields as None — partial overrides merge onto
    the *service's* default config (InferenceService.legacy_strategy), so
    resolution cannot happen at parse time."""
    assert parse_legacy_advise({"code": CODE}) == (CODE, None, None)
    assert parse_legacy_advise({"code": CODE, "beam_size": 4}) == (CODE, 4, None)
    assert parse_legacy_advise({"code": CODE, "length_penalty": 1}) == \
        (CODE, None, 1.0)
    with pytest.raises(ApiError) as excinfo:
        parse_legacy_advise({"code": CODE, "beam_size": 99})
    assert excinfo.value.status == 422
    with pytest.raises(ApiError) as excinfo:
        parse_legacy_advise({"code": CODE, "length_penalty": float("nan")})
    assert excinfo.value.status == 422


def test_legacy_response_shape_matches_pre_v1_bytes():
    """to_legacy_dict reproduces the old /advise body: same keys, same
    order, strategy spelled as beam_size/length_penalty."""
    response = AdviseResponse(
        generated_code="int main() {}\n", advice=(), diagnostics=(),
        strategy=BeamStrategy(beam_size=4, length_penalty=0.6),
        cached=False, latency_ms=2.0, cache_key="k")
    legacy = response.to_legacy_dict()
    assert list(legacy) == ["generated_code", "advice", "diagnostics",
                            "cached", "latency_ms", "cache_key",
                            "beam_size", "length_penalty"]
    assert legacy["beam_size"] == 4 and legacy["length_penalty"] == 0.6
    greedy = AdviseResponse(
        generated_code="", advice=(), diagnostics=(),
        strategy=SampleStrategy(seed=5)).to_legacy_dict()
    assert greedy["beam_size"] == 1 and greedy["length_penalty"] == 0.0


# ------------------------------------------------- normalisation invariants


def test_beam_size_one_normalises_to_greedy():
    assert BeamStrategy(beam_size=1, length_penalty=0.9).normalised() == \
        GreedyStrategy()
    assert BeamStrategy(beam_size=2).normalised() == BeamStrategy(beam_size=2)


def test_strategy_from_generation_mirrors_legacy_cache_normalisation():
    assert strategy_from_generation(None) == GreedyStrategy()
    assert strategy_from_generation(GenerationConfig(beam_size=1,
                                                     length_penalty=0.9)) == \
        GreedyStrategy()
    beam = strategy_from_generation(GenerationConfig(beam_size=4,
                                                     length_penalty=0.6))
    assert beam == BeamStrategy(beam_size=4, length_penalty=0.6)
    assert beam.canonical() == "beam4:lp0.6"


def test_canonical_distinguishes_every_output_changing_parameter():
    a = SampleStrategy(temperature=0.7, seed=1)
    b = SampleStrategy(temperature=0.7, seed=2)
    c = SampleStrategy(temperature=0.7000001, seed=1)
    assert len({a.canonical(), b.canonical(), c.canonical()}) == 3


def test_int_and_float_spellings_share_one_canonical_identity():
    """JSON clients spell 1.0 as 1 freely; both spellings must hit the same
    cache entries and micro-batch groups (numeric fields coerce to float)."""
    assert BeamStrategy(beam_size=4, length_penalty=1) == \
        BeamStrategy(beam_size=4, length_penalty=1.0)
    assert strategy_from_dict({"name": "beam", "beam_size": 4,
                               "length_penalty": 1}).canonical() == \
        BeamStrategy(beam_size=4, length_penalty=1.0).canonical()
    assert strategy_from_dict({"name": "sample", "temperature": 2,
                               "top_p": 1}).canonical() == \
        SampleStrategy(temperature=2.0, top_p=1.0).canonical()
    # Coercion must not mask type errors: bools and strings still fail.
    with pytest.raises(ApiError):
        AdviseRequest.from_dict({"code": CODE,
                                 "strategy": {"name": "beam",
                                              "length_penalty": True}})


def test_status_split_keys_on_error_kind_not_message_text():
    """The 400/422 split reads StrategyParamError.kind, not message words —
    rewording a message cannot flip a status class."""
    with pytest.raises(StrategyParamError) as excinfo:
        strategy_from_dict({"name": "beam", "beam_size": "four"})
    assert excinfo.value.kind == "type"
    assert ApiError.from_strategy_error(excinfo.value).status == 400
    with pytest.raises(StrategyParamError) as excinfo:
        strategy_from_dict({"name": "beam", "beam_size": 99})
    assert excinfo.value.kind == "value"
    assert ApiError.from_strategy_error(excinfo.value).status == 422
    with pytest.raises(StrategyParamError) as excinfo:
        strategy_from_dict({"name": "beam", "nope": 1})
    assert excinfo.value.kind == "unknown"
    assert ApiError.from_strategy_error(excinfo.value).status == 400
