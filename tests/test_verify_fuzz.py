"""The adversarial fuzz fleet: determinism, coverage and the no-crash bar.

The headline property (ISSUE acceptance): a seeded fleet of >= 100 cases
runs through the full verification pipeline — and the lexer / parser /
advisor front end — with **zero uncaught exceptions**, and every case's
verdict matches the one its mutation was constructed to produce.
"""

from __future__ import annotations

from repro.verify.fuzz import (
    EXPECTED_VERDICTS,
    FleetResult,
    fuzz_case,
    fuzz_corpus,
    main,
    run_fleet,
)


def test_fuzz_case_is_deterministic_per_seed_and_index():
    one = fuzz_case(7, 3)
    two = fuzz_case(7, 3)
    assert one == two
    assert fuzz_case(8, 3) != one  # different seed, different corpus


def test_corpus_covers_every_mutation_kind():
    kinds = {case.kind for case in fuzz_corpus(7, 60)}
    assert kinds == set(EXPECTED_VERDICTS)


def test_corpus_includes_degenerate_loop_bounds():
    bounds = {case.n for case in fuzz_corpus(7, 120) if case.kind == "correct"}
    assert 0 in bounds and 1 in bounds


def test_hundred_case_fleet_no_crashes_and_all_verdicts_match():
    cases = fuzz_corpus(7, 100)
    result = run_fleet(cases, sim_timeout=1.0)
    assert result.crashes == []
    assert result.mismatches == []
    assert result.total == 100
    assert result.matched == 100
    # Every engineered verdict class was actually exercised.
    assert set(result.by_status) == set(EXPECTED_VERDICTS.values())


def test_small_fleet_without_frontend_still_verifies():
    result = run_fleet(fuzz_corpus(3, 6), sim_timeout=1.0, frontend=False)
    assert result.ok
    assert result.matched == result.total == 6


def test_fleet_result_not_ok_on_mismatch_or_crash():
    assert not FleetResult(total=1, mismatches=[("c", "a", "b")]).ok
    assert not FleetResult(total=1, crashes=[("c", "verify", "boom")]).ok
    assert FleetResult(total=1, matched=1).ok


def test_cli_smoke_exit_zero(capsys):
    assert main(["--seed", "7", "--cases", "5"]) == 0
    out = capsys.readouterr().out
    assert "fuzz fleet: 5 cases" in out
