"""repro.serving.sched: the continuous-batching scheduler.

Three layers, mirroring the module's own layering:

* :class:`ContinuousDecoderLoop` structure — the memoised cross-attention
  mask is rebuilt (fresh identity) on *every* row-composition change, the
  regression behind iteration-level joins (a mask memo keyed on shape alone
  would serve row 2's padding to whoever occupies row 2 next);
* :class:`InflightBatch` semantics — slot offsets under mid-deck retires,
  misbehaving strategy states are contained as errors, finished slots come
  back unresolved;
* :class:`ContinuousScheduler` — futures contract, FIFO fill-to-capacity
  with the anti-starvation guard, drain-then-switch across models,
  backpressure, poison-and-recover, clean close; then the
  :class:`InferenceService` wiring (continuous is the default path, static
  stays available and bit-identical) and the router's pool-wide view.

The *exactness* of continuous decoding (staggered joins ≡ sequential,
bitwise) is pinned down in ``tests/test_decoding_differential.py``; these
tests pin down the scheduling machinery around it.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.model.attention import KVCache, padding_mask
from repro.model.decoding import (
    BeamStrategy,
    DecodingStrategy,
    GreedyRowState,
    GreedyStrategy,
    SampleStrategy,
)
from repro.model.generation import ContinuousDecoderLoop
from repro.serving import ServingMetrics
from repro.serving.sched import (
    ContinuousScheduler,
    InflightBatch,
    QueueFullError,
    SchedulerPolicy,
    SchedWork,
)

PAD, SOS, EOS = 0, 1, 2
VOCAB = 12


# ------------------------------------------------------------------ stubs


class StubModel:
    """Deterministic dual-protocol decoder (scalar position or per-row
    ``positions``) whose state lives in a real KV cache.

    Logits are a function of the row's un-padded source, its own step index
    and its full fed-token history, so any cross-row leak or mis-compacted
    cache changes the output immediately.  A row reaches EOS after
    ``2 + sum(source) % 3`` steps — unless its source contains the token
    ``11``, which never ends (``max_length`` territory).
    """

    vocab_size = VOCAB

    def encode(self, source_ids, pad_id, *, training=False):
        return source_ids

    def start_decoding(self):
        return SimpleNamespace(position=0, self_caches=[KVCache()],
                               cross_caches=[])

    def decode_step(self, token_ids, memory, source_ids, pad_id, state):
        fed = token_ids[:, None, :, None].astype(np.float64)
        keys, _ = state.self_caches[0].append(fed, fed)
        history = keys[:, 0, :, 0].sum(axis=1)
        positions = getattr(state, "positions", None)
        batch = source_ids.shape[0]
        logits = np.full((batch, self.vocab_size), -50.0)
        for row in range(batch):
            pos = (int(positions[row]) if positions is not None
                   else state.position)
            real = [int(t) for t in source_ids[row] if int(t) != pad_id]
            mix = sum(real) + int(history[row]) * 3 + pos * 2
            for token in range(3, self.vocab_size):
                logits[row, token] = float((mix + token) % 5)
            if 11 not in real and pos >= 2 + sum(real) % 3:
                logits[row, EOS] = 99.0
        if positions is not None:
            positions += token_ids.shape[1]
        else:
            state.position += 1
        return logits


class StubPipeline:
    """Duck-typed stand-in for the MPI-RICAL pipeline the scheduler drives:
    sources are whitespace-separated token ids, packaging just pairs them."""

    def __init__(self, model=None) -> None:
        self.model = model or StubModel()
        self.encoder = SimpleNamespace(
            vocab=SimpleNamespace(pad_id=PAD, sos_id=SOS, eos_id=EOS))

    def encode_source_ids(self, source_code, xsbt=None, tokens=None):
        return [int(token) for token in source_code.split()]

    def package_prediction(self, source_code, generated_ids):
        return (source_code, tuple(generated_ids))


class StubEntry:
    def __init__(self, pipeline=None, identity="stub@0") -> None:
        self.pipeline = pipeline or StubPipeline()
        self.identity = identity

    def ensure_loaded(self):
        return self.pipeline


def make_work(source, strategy=None, *, entry=None, max_length=10, **kwargs):
    return SchedWork(source_code=source, xsbt=None, tokens=None,
                     strategy=strategy or GreedyStrategy(),
                     entry=entry or StubEntry(), max_length=max_length,
                     **kwargs)


def sequential(source, strategy=None, *, model=None, max_length=10):
    """The reference result ``package_prediction`` shape for ``source``."""
    strategy = strategy or GreedyStrategy()
    ids = strategy.decode(model or StubModel(),
                          [int(t) for t in source.split()],
                          sos_id=SOS, eos_id=EOS, pad_id=PAD,
                          max_length=max_length)
    return (source, tuple(ids))


class _Work:
    future = None


# ------------------------------------- loop: mask follows row composition


def test_memory_mask_is_rebuilt_on_every_row_composition_change():
    """Regression: the decode step memoises the cross-attention mask on the
    source matrix's identity, so the loop must hand it a *fresh* matrix and
    mask whenever rows join or retire — reusing either would serve a stale
    row's padding to whoever sits in that row next."""
    loop = ContinuousDecoderLoop(StubModel(), pad_id=PAD)
    loop.join([3, 4, 5])
    first_src, first_mask = loop.state.memory_mask_source, loop.state.memory_mask
    assert first_src is loop.src
    np.testing.assert_array_equal(first_mask, padding_mask(loop.src, PAD))

    loop.join([6])  # narrower source: row 1 is padded to width 3
    assert loop.state.memory_mask_source is not first_src
    assert loop.state.memory_mask is not first_mask
    np.testing.assert_array_equal(loop.state.memory_mask,
                                  padding_mask(loop.src, PAD))
    assert loop.src.shape == (2, 3)
    assert bool(loop.state.memory_mask[1].any())  # row 1's padding masked

    loop.retire(0)  # the wide row leaves; the matrix re-narrows
    assert loop.src.shape == (1, 1)
    assert not loop.state.memory_mask.any()
    assert loop.state.memory_mask_source is loop.src

    loop.retire(0)
    assert loop.state.memory_mask is None
    assert loop.state.memory_mask_source is None


def test_loop_rejects_empty_sources_and_bad_row_counts():
    loop = ContinuousDecoderLoop(StubModel(), pad_id=PAD)
    with pytest.raises(ValueError, match="empty source"):
        loop.join([])
    with pytest.raises(ValueError, match="rows must be"):
        loop.join([3], rows=0)
    with pytest.raises(RuntimeError, match="no live rows"):
        loop.step(np.zeros((0, 1), dtype=np.int64))
    loop.join([3, 4])
    with pytest.raises(ValueError, match="cannot retire"):
        loop.retire(1, rows=2)


# ------------------------------------------------- InflightBatch semantics


def test_slot_offsets_renumber_after_a_mid_deck_retire():
    batch = InflightBatch(StubModel(), sos_id=SOS, eos_id=EOS, pad_id=PAD)
    # sum(source) % 3 staggers the EOS steps: 4 finishes first (sum 4 -> 3
    # steps), the beam and the last greedy run longer.
    greedy_state = GreedyStrategy().row_state(sos_id=SOS, eos_id=EOS,
                                              max_length=10)
    beam_state = BeamStrategy(beam_size=2).row_state(sos_id=SOS, eos_id=EOS,
                                                     max_length=10)
    tail_state = GreedyStrategy().row_state(sos_id=SOS, eos_id=EOS,
                                            max_length=10)
    batch.add(_Work(), greedy_state, [4])
    batch.add(_Work(), beam_state, [3, 4])
    batch.add(_Work(), tail_state, [5, 6])
    assert [slot.start for slot in batch.slots] == [0, 1, 3]
    assert batch.num_rows == 4

    finished = []
    for _ in range(30):
        finished += batch.step()
        if not batch.num_rows:
            break
        # Offsets stay contiguous and row-aligned after every retire.
        offset = 0
        for slot in batch.slots:
            assert slot.start == offset
            offset += slot.state.rows
        assert offset == batch.num_rows == len(batch._feed)
    assert len(finished) == 3
    # Every request still matches its sequential decode.
    assert tuple(greedy_state.result()) == sequential("4")[1]
    assert tuple(beam_state.result()) == sequential(
        "3 4", BeamStrategy(beam_size=2))[1]
    assert tuple(tail_state.result()) == sequential("5 6")[1]


def test_step_returns_finished_slots_unresolved():
    batch = InflightBatch(StubModel(), sos_id=SOS, eos_id=EOS, pad_id=PAD)
    work = make_work("4")
    state = GreedyStrategy().row_state(sos_id=SOS, eos_id=EOS, max_length=10)
    batch.add(work, state, [4])
    finished = []
    while batch.num_rows:
        finished += batch.step()
    assert [slot.work for slot in finished] == [work]
    assert not work.future.done()  # resolution is the scheduler's job


class _WrongCountState(GreedyRowState):
    def advance(self, logits):
        return [3, 3], None  # two tokens for one row


class _EscapingParentsState(GreedyRowState):
    rows = 2

    def first_tokens(self):
        return [SOS, SOS]

    def advance(self, logits):
        return [3, 3], [0, 2]  # parent 2 is outside this block


def test_misbehaving_states_raise_instead_of_corrupting_neighbours():
    batch = InflightBatch(StubModel(), sos_id=SOS, eos_id=EOS, pad_id=PAD)
    batch.add(_Work(), _WrongCountState(sos_id=SOS, eos_id=EOS), [3])
    with pytest.raises(RuntimeError, match="fed 2 tokens"):
        batch.step()

    batch = InflightBatch(StubModel(), sos_id=SOS, eos_id=EOS, pad_id=PAD)
    batch.add(_Work(), _EscapingParentsState(sos_id=SOS, eos_id=EOS), [3, 4])
    with pytest.raises(RuntimeError, match="escaped the row block"):
        batch.step()


# ------------------------------------------------------- scheduler: futures


def test_scheduler_resolves_futures_to_sequential_results():
    jobs = [("3 4 5", GreedyStrategy()),
            ("6 7", BeamStrategy(beam_size=3, length_penalty=0.6)),
            ("8", SampleStrategy(temperature=0.9, top_k=4, seed=7)),
            ("9 10 3", GreedyStrategy())]
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=4)) as sched:
        futures = [sched.submit(make_work(source, strategy))
                   for source, strategy in jobs]
        results = [future.result(timeout=30) for future in futures]
    assert results == [sequential(source, strategy)
                       for source, strategy in jobs]


def test_scheduler_answers_empty_sources_without_decoding():
    with ContinuousScheduler() as sched:
        future = sched.submit(make_work(""))
        assert future.result(timeout=30) == ("", ())


def test_streaming_tokens_arrive_per_iteration():
    tokens: list[int] = []
    with ContinuousScheduler() as sched:
        future = sched.submit(make_work("3 4 5", on_token=tokens.append))
        result = future.result(timeout=30)
    assert tuple(tokens) == result[1] == sequential("3 4 5")[1]


class _NoRowStrategy(DecodingStrategy):
    name = "norow"

    def canonical(self) -> str:
        return "norow"


def test_unsupported_and_oversized_strategies_fail_their_own_future():
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=2)) as sched:
        unsupported = sched.submit(make_work("3", _NoRowStrategy()))
        oversized = sched.submit(make_work("3", BeamStrategy(beam_size=4)))
        survivor = sched.submit(make_work("3 4"))
        with pytest.raises(NotImplementedError, match="continuous batching"):
            unsupported.result(timeout=30)
        with pytest.raises(ValueError, match="capped at 2"):
            oversized.result(timeout=30)
        assert survivor.result(timeout=30) == sequential("3 4")


def test_submit_after_close_raises_and_close_drains_accepted_work():
    sched = ContinuousScheduler()
    futures = [sched.submit(make_work(f"{3 + n} 4")) for n in range(5)]
    sched.close(wait=True)
    assert all(future.done() for future in futures)
    assert [f.result() for f in futures] == [sequential(f"{3 + n} 4")
                                             for n in range(5)]
    with pytest.raises(RuntimeError, match="closed"):
        sched.submit(make_work("3"))


# -------------------------------------------------- scheduler: backpressure


class _GateModel(StubModel):
    """Blocks the worker inside its first decode step until released."""

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.gate = threading.Event()

    def decode_step(self, *args, **kwargs):
        self.entered.set()
        assert self.gate.wait(timeout=30)
        return super().decode_step(*args, **kwargs)


def test_queue_full_raises_while_the_worker_is_busy():
    model = _GateModel()
    entry = StubEntry(StubPipeline(model))
    sched = ContinuousScheduler(policy=SchedulerPolicy(max_rows=1,
                                                       max_queue=1))
    try:
        first = sched.submit(make_work("3 11", entry=entry))
        assert model.entered.wait(timeout=30)  # worker is mid-step
        queued = sched.submit(make_work("4", entry=entry))
        with pytest.raises(QueueFullError):
            sched.submit(make_work("5", entry=entry))
        model.gate.set()
        assert first.result(timeout=30) == sequential(
            "3 11", model=StubModel())
        assert queued.result(timeout=30) == sequential(
            "4", model=StubModel())
    finally:
        model.gate.set()
        sched.close()


# ----------------------------------------------- scheduler: poison/recover


class _BoomState(GreedyRowState):
    def advance(self, logits):
        if self.steps >= 1:
            raise RuntimeError("boom at step 2")
        self.steps += 1
        return [3], None


class _BoomStrategy(GreedyStrategy):
    def row_state(self, **kwargs):
        return _BoomState(**kwargs)


def test_failed_step_poisons_in_flight_requests_but_not_the_scheduler():
    model = _GateModel()
    entry = StubEntry(StubPipeline(model))
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=4)) as sched:
        boom = sched.submit(make_work("3", _BoomStrategy(), entry=entry))
        # The gate holds the worker inside boom's first step, so the
        # bystander is provably queued before the step that explodes —
        # a never-ending source keeps it in flight when boom fires.
        assert model.entered.wait(timeout=30)
        bystander = sched.submit(make_work("4 11", entry=entry,
                                           max_length=400))
        model.gate.set()
        with pytest.raises(RuntimeError, match="boom at step 2"):
            boom.result(timeout=30)
        with pytest.raises(RuntimeError, match="boom at step 2"):
            bystander.result(timeout=30)
        # The batch was rebuilt: later submissions decode normally.
        after = sched.submit(make_work("5 6", entry=entry))
        assert after.result(timeout=30) == sequential("5 6")


# ------------------------------------- scheduler: fairness and model switch


def _drain_pass(sched):
    with sched._cond:
        return sched._drain_admissible()


def test_head_starvation_guard_holds_rows_for_the_blocked_head():
    """Unit-drive the admission policy (worker stopped): a wide head is
    bypassed at most ``starvation_limit`` passes, then the queue freezes
    until the batch drains enough for it."""
    metrics = ServingMetrics()
    sched = ContinuousScheduler(
        policy=SchedulerPolicy(max_rows=2, starvation_limit=3),
        metrics=metrics)
    sched.close(wait=True)  # worker gone; we drive passes by hand
    sched._closed = False   # reopen the queue for the hand-driven test
    entry = StubEntry()
    head = make_work("3", BeamStrategy(beam_size=2), entry=entry)
    # A busy batch leaves one free row, so the beam-2 head never fits.
    sched._batch = SimpleNamespace(num_requests=1, num_rows=1)
    sched._identity = entry.identity

    for bypass in range(3):
        sched._queue.clear()
        sched._queue.extend([head, make_work("4", entry=entry)])
        admitted = _drain_pass(sched)
        assert [work.source_code for work in admitted] == ["4"]
        assert sched._head_bypassed == bypass + 1
    assert not sched._head_starved

    # The limit is reached: nothing jumps the head any more.
    sched._queue.clear()
    sched._queue.extend([head, make_work("4", entry=entry)])
    assert _drain_pass(sched) == []
    assert sched._head_starved
    assert metrics.snapshot()["sched_starvation_total"] == 1
    assert _drain_pass(sched) == []  # starvation is recorded once, not per pass
    assert metrics.snapshot()["sched_starvation_total"] == 1

    # The batch drains; the head (and its follower) finally join.
    sched._batch = SimpleNamespace(num_requests=0, num_rows=0)
    admitted = _drain_pass(sched)
    assert admitted[0] is head
    assert not sched._head_starved and sched._head_bypassed == 0


def test_model_switch_drains_then_switches():
    entry_a = StubEntry(identity="model-a@0")
    entry_b = StubEntry(identity="model-b@0")
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=4)) as sched:
        futures = [sched.submit(make_work("3 11", entry=entry_a, max_length=6)),
                   sched.submit(make_work("4 5", entry=entry_b)),
                   sched.submit(make_work("6", entry=entry_a, max_length=6))]
        results = [future.result(timeout=30) for future in futures]
    assert results == [sequential("3 11", max_length=6),
                       sequential("4 5"),
                       sequential("6", max_length=6)]


def test_idle_waiting_for_retires_is_not_counted_as_starvation():
    """A head that waits only because the batch is full (nothing else could
    join either) must not trip the starvation guard."""
    sched = ContinuousScheduler(policy=SchedulerPolicy(max_rows=2,
                                                       starvation_limit=1))
    sched.close(wait=True)
    sched._closed = False
    entry = StubEntry()
    sched._batch = SimpleNamespace(num_requests=2, num_rows=2)  # no free rows
    sched._identity = entry.identity
    sched._queue.append(make_work("3", BeamStrategy(beam_size=2), entry=entry))
    for _ in range(5):
        assert _drain_pass(sched) == []
    assert sched._head_bypassed == 0 and not sched._head_starved


# -------------------------------------------------------- scheduler metrics


def test_scheduler_records_step_join_wait_and_batch_metrics():
    metrics = ServingMetrics()
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=4),
                             metrics=metrics) as sched:
        futures = [sched.submit(make_work("3 4", GreedyStrategy())),
                   sched.submit(make_work("5", BeamStrategy(beam_size=2))),
                   sched.submit(make_work("6 7", GreedyStrategy()))]
        for future in futures:
            future.result(timeout=30)
    snapshot = metrics.snapshot()
    assert snapshot["sched_steps_total"] >= 1
    assert snapshot["sched_joins_total"] == 4  # 1 + 2 + 1 rows
    assert snapshot["sched_retires_total"] == 3
    assert snapshot["sched_occupancy_max"] <= 4
    assert snapshot["sched_occupancy_mean"] > 0
    assert snapshot["sched_queue_wait_window"] == 3
    assert snapshot["sched_queue_wait_ms_p95"] >= \
        snapshot["sched_queue_wait_ms_p50"] >= 0
    assert snapshot["sched_starvation_total"] == 0
    # The continuous path keeps the static batch dashboards populated.
    assert snapshot["batches_total"] >= 2
    assert "greedy" in snapshot["batches_by_config"]
    assert any(label.startswith("beam2")
               for label in snapshot["batches_by_config"])
    assert snapshot["decode_latency_window"] == 3


# ----------------------------------------------------- service integration


from repro.api import AdviseRequest  # noqa: E402  (section-local imports)
from repro.model.generation import GenerationConfig  # noqa: E402
from repro.serving import InferenceService  # noqa: E402
from repro.serving.router import Router, RouterPolicy  # noqa: E402
from repro.serving.server import make_server  # noqa: E402

FAST = GenerationConfig(max_length=40)


@pytest.fixture(scope="module")
def continuous_service(tiny_model):
    with InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                          num_workers=2, cache_capacity=32,
                          generation=FAST) as svc:
        yield svc


def test_service_defaults_to_continuous_and_exposes_sched_gauges(
        continuous_service, small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:3]]
    futures = [continuous_service.advise_async(src) for src in sources]
    for future in futures:
        future.result(timeout=120)
    snapshot = continuous_service.metrics()
    assert snapshot["scheduler"] == "continuous"
    assert snapshot["sched_steps_total"] >= 1
    assert snapshot["sched_joins_total"] >= 3
    assert snapshot["sched_retires_total"] >= 3
    assert snapshot["sched_occupancy_mean"] > 0
    assert snapshot["sched_queue_wait_ms_p95"] >= 0
    assert snapshot["sched_starvation_total"] == 0


def test_static_mode_is_available_and_bit_identical(tiny_model,
                                                    small_dataset):
    source = small_dataset.splits.test[4].source_code
    with InferenceService(tiny_model, scheduler="static",
                          generation=FAST) as static_svc:
        assert static_svc.sched is None
        static_served = static_svc.advise(source, timeout=120)
        assert static_svc.metrics()["scheduler"] == "static"
    with InferenceService(tiny_model, generation=FAST) as continuous_svc:
        continuous_served = continuous_svc.advise(source, timeout=120)
    assert continuous_served.session == static_served.session


def test_invalid_scheduler_mode_is_rejected(tiny_model):
    with pytest.raises(ValueError, match="scheduler"):
        InferenceService(tiny_model, scheduler="asap")


def test_stream_rides_the_shared_continuous_batch(continuous_service,
                                                  small_dataset):
    source = small_dataset.splits.test[5].source_code
    steps_before = continuous_service.metrics()["sched_steps_total"]
    chunks = list(continuous_service.advise_stream(
        AdviseRequest(code=source)))
    assert chunks[-1]["type"] == "final"
    tokens = [chunk for chunk in chunks[:-1] if chunk["type"] == "token"]
    blocking = continuous_service.advise(source, timeout=120)
    generated = blocking.session.generated_code
    if generated:
        assert tokens  # a non-empty generation streamed token chunks
    # The stream decoded through the scheduler, not a dedicated decode.
    assert continuous_service.metrics()["sched_steps_total"] > steps_before


# ------------------------------------------------------------------- router


def test_router_aggregates_pool_sched_gauges(tiny_model, small_dataset):
    service = InferenceService(tiny_model, cache_capacity=16,
                               generation=FAST)
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        service.advise(small_dataset.splits.test[6].source_code, timeout=120)
        router = Router(endpoints=[("w0", host, port)],
                        policy=RouterPolicy(health_interval=0.0))
        sched = router.metrics_body()["sched"]
        assert sched["workers_reporting"] == 1
        assert sched["workers_unreachable"] == 0
        assert sched["sched_steps_total"] >= 1
        assert sched["sched_joins_total"] >= 1
        assert sched["sched_retires_total"] >= 1
        assert sched["sched_occupancy_mean"] > 0
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_router_sched_view_counts_unreachable_workers():
    router = Router(endpoints=[("w0", "127.0.0.1", 1)],
                    policy=RouterPolicy(health_interval=0.0))
    sched = router.metrics_body()["sched"]
    assert sched["sched_steps_total"] == 0
    assert sched["workers_reporting"] == 0
    assert sched["workers_unreachable"] == 1
