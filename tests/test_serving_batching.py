"""Micro-batcher scheduling: size-triggered flush, timeout flush, errors, close."""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import pytest

from repro.serving.batching import MicroBatcher


def collecting_batcher(process=None, **kwargs):
    """A batcher that records every flushed batch size."""
    sizes: list[int] = []
    batcher = MicroBatcher(process or (lambda items: [x * 2 for x in items]),
                           on_batch=lambda size, group: sizes.append(size),
                           **kwargs)
    return batcher, sizes


def test_single_request_flushes_on_timeout():
    """A lone request must not wait for a full batch."""
    with MicroBatcher(lambda items: [x + 1 for x in items],
                      max_batch_size=64, max_wait_ms=50) as batcher:
        start = time.monotonic()
        assert batcher.submit(41).result(timeout=5) == 42
        elapsed = time.monotonic() - start
    # Flushed by the 50ms deadline, not by some much larger hang.
    assert elapsed < 5


def test_full_batch_flushes_without_waiting_for_the_timeout():
    release = threading.Event()
    started = threading.Event()

    def process(items):
        started.set()
        release.wait(timeout=10)
        return list(items)

    # The timeout is far beyond the test budget: only the size trigger can
    # flush this batch in time.
    with MicroBatcher(process, max_batch_size=4, max_wait_ms=60_000) as batcher:
        futures = [batcher.submit(i) for i in range(4)]
        assert started.wait(timeout=5), "full batch did not flush on size"
        release.set()
        assert [f.result(timeout=5) for f in futures] == [0, 1, 2, 3]


def test_batch_sizes_never_exceed_max():
    batcher, sizes = collecting_batcher(max_batch_size=3, max_wait_ms=20,
                                        num_workers=2)
    with batcher:
        futures = [batcher.submit(i) for i in range(20)]
        results = [f.result(timeout=10) for f in futures]
    assert results == [i * 2 for i in range(20)]
    assert sizes and all(1 <= size <= 3 for size in sizes)
    assert sum(sizes) == 20


def test_concurrent_submitters_all_get_their_own_result():
    batcher, sizes = collecting_batcher(max_batch_size=8, max_wait_ms=5,
                                        num_workers=2)
    results: dict[int, int] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(6)

    def client(client_id: int) -> None:
        barrier.wait()
        for i in range(25):
            value = client_id * 1000 + i
            out = batcher.submit(value).result(timeout=10)
            with lock:
                results[value] = out

    threads = [threading.Thread(target=client, args=(n,)) for n in range(6)]
    with batcher:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(results) == 150
    assert all(out == value * 2 for value, out in results.items())
    assert sum(sizes) == 150
    # Concurrency must actually produce some multi-request batches.
    assert max(sizes) > 1


def test_errors_fail_every_request_in_the_flushed_batch():
    def explode(items):
        raise RuntimeError("model fell over")

    with MicroBatcher(explode, max_batch_size=4, max_wait_ms=5) as batcher:
        futures = [batcher.submit(i) for i in range(3)]
        done, _ = wait(futures, timeout=5)
        assert len(done) == 3
        for future in futures:
            with pytest.raises(RuntimeError, match="model fell over"):
                future.result()


def test_wrong_result_count_is_an_error():
    # One spurious extra result regardless of the flushed batch's size.
    with MicroBatcher(lambda items: list(items) + [None],
                      max_batch_size=4, max_wait_ms=5) as batcher:
        futures = [batcher.submit(i) for i in range(3)]
        wait(futures, timeout=5)
        with pytest.raises(RuntimeError, match="results"):
            futures[0].result()


def test_close_drains_pending_requests_then_rejects_new_ones():
    slow_release = threading.Event()

    def slow(items):
        slow_release.wait(timeout=10)
        return list(items)

    batcher = MicroBatcher(slow, max_batch_size=2, max_wait_ms=60_000)
    futures = [batcher.submit(i) for i in range(5)]
    slow_release.set()
    batcher.close(wait=True)
    assert [f.result(timeout=1) for f in futures] == [0, 1, 2, 3, 4]
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(99)


def test_group_key_never_mixes_groups_in_one_batch():
    """Generation configs must stay homogeneous per flush."""
    batches: list[list[tuple[str, int]]] = []
    lock = threading.Lock()

    def process(items):
        with lock:
            batches.append(list(items))
        return list(items)

    with MicroBatcher(process, max_batch_size=4, max_wait_ms=10,
                      group_key=lambda payload: payload[0]) as batcher:
        futures = [batcher.submit((group, i))
                   for i, group in enumerate(["greedy", "beam4", "greedy",
                                              "beam4", "greedy", "beam2"])]
        results = [f.result(timeout=10) for f in futures]
    assert sorted(results) == sorted((g, i) for i, g in enumerate(
        ["greedy", "beam4", "greedy", "beam4", "greedy", "beam2"]))
    for batch in batches:
        assert len({group for group, _ in batch}) == 1
    # Within a group, queue order is preserved.
    greedy_items = [item for batch in batches for item in batch
                    if item[0] == "greedy"]
    assert greedy_items == [("greedy", 0), ("greedy", 2), ("greedy", 4)]


def test_full_group_flushes_even_behind_an_older_other_group_request():
    """A group hitting max_batch_size flushes on size, not on the timeout."""
    started = threading.Event()
    release = threading.Event()
    flushed: list[list[str]] = []
    lock = threading.Lock()

    def process(items):
        with lock:
            flushed.append(list(items))
        started.set()
        release.wait(timeout=10)
        return list(items)

    # The timeout is far beyond the test budget: only the size trigger can
    # flush in time, and the full group sits *behind* a lone older request.
    with MicroBatcher(process, max_batch_size=3, max_wait_ms=60_000,
                      group_key=lambda payload: payload[0]) as batcher:
        lone = batcher.submit(("greedy", 0))
        beams = [batcher.submit(("beam", i)) for i in range(3)]
        assert started.wait(timeout=5), "full group did not flush on size"
        assert flushed[0] == [("beam", 0), ("beam", 1), ("beam", 2)]
        release.set()
        assert [f.result(timeout=10) for f in beams] == [("beam", i)
                                                         for i in range(3)]
    # The lone request keeps its own max_wait deadline; close() drains it.
    assert lone.result(timeout=10) == ("greedy", 0)


def test_expired_minority_request_is_not_starved_by_a_full_group():
    """The oldest request's max_wait deadline outranks the size trigger: a
    lone minority-group request must flush first once expired, even while the
    majority group has a full batch ready."""
    release = threading.Event()
    flushed: list[list[tuple[str, int]]] = []
    lock = threading.Lock()

    def process(items):
        with lock:
            flushed.append(list(items))
        release.wait(timeout=10)
        return list(items)

    with MicroBatcher(process, max_batch_size=3, max_wait_ms=30,
                      group_key=lambda payload: payload[0]) as batcher:
        # Occupy the single worker so the queue builds up behind it.
        first = batcher.submit(("warm", 0))
        time.sleep(0.05)
        beam = batcher.submit(("beam", 0))
        greedy = [batcher.submit(("greedy", i)) for i in range(3)]
        time.sleep(0.1)   # the beam request's 30ms deadline expires
        release.set()
        assert beam.result(timeout=10) == ("beam", 0)
        assert [f.result(timeout=10) for f in greedy] == [("greedy", i)
                                                          for i in range(3)]
        assert first.result(timeout=10) == ("warm", 0)
    # After the warm-up flush, the expired beam request went before the
    # already-full greedy group.
    assert flushed[1] == [("beam", 0)]
    assert flushed[2] == [("greedy", 0), ("greedy", 1), ("greedy", 2)]


def test_on_batch_reports_the_group():
    observed: list[tuple[int, object]] = []
    with MicroBatcher(lambda items: list(items), max_batch_size=8, max_wait_ms=5,
                      group_key=lambda payload: payload % 2,
                      on_batch=lambda size, group: observed.append((size, group))
                      ) as batcher:
        futures = [batcher.submit(i) for i in range(4)]
        [f.result(timeout=10) for f in futures]
    assert sum(size for size, _ in observed) == 4
    assert {group for _, group in observed} <= {0, 1}


def test_constructor_validation():
    process = lambda items: items  # noqa: E731
    with pytest.raises(ValueError):
        MicroBatcher(process, max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatcher(process, max_wait_ms=-1)
    with pytest.raises(ValueError):
        MicroBatcher(process, num_workers=0)
