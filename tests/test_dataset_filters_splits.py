"""Tests for the dataset inclusion/exclusion filters and the 80:10:10 split."""

import pytest

from repro.corpus.synthesis import CorpusProgram
from repro.dataset.filters import DEFAULT_MAX_TOKENS, FilterConfig, apply_filters, passes_filters
from repro.dataset.records import TranslationExample
from repro.dataset.splits import SplitConfig, split_examples


def _program(token_count=100, mpi=("MPI_Init", "MPI_Finalize"), line_count=30):
    return CorpusProgram(
        program_id="p", family="pi_riemann", code="int main() { }",
        token_count=token_count, line_count=line_count,
        mpi_functions=tuple(mpi), mpi_call_lines=(1,) * len(mpi),
    )


class TestFilters:
    def test_default_max_tokens_matches_paper(self):
        assert DEFAULT_MAX_TOKENS == 320

    def test_token_cap_excludes_long_programs(self):
        ok, reason = passes_filters(_program(token_count=400), FilterConfig())
        assert not ok and reason == "too_long"

    def test_mpi_required(self):
        ok, reason = passes_filters(_program(mpi=()), FilterConfig())
        assert not ok and reason == "no_mpi"

    def test_init_finalize_requirement_optional(self):
        program = _program(mpi=("MPI_Send",))
        assert passes_filters(program, FilterConfig())[0]
        ok, reason = passes_filters(program, FilterConfig(require_init_finalize=True))
        assert not ok and reason == "missing_init_finalize"

    def test_apply_filters_report(self):
        programs = [
            _program(),
            _program(token_count=500),
            _program(mpi=()),
        ]
        kept, report = apply_filters(programs)
        assert len(kept) == 1
        assert report.total == 3
        assert report.kept == 1
        assert report.dropped_too_long == 1
        assert report.dropped_no_mpi == 1
        assert 0.0 < report.drop_fraction < 1.0

    def test_small_corpus_filter_rates(self, small_corpus):
        kept, report = apply_filters(small_corpus.programs)
        assert report.kept == len(kept)
        assert report.kept > 0
        # Serial programs exist in the corpus and must be dropped.
        assert report.dropped_no_mpi >= 0


def _examples(n):
    return [
        TranslationExample(example_id=f"e{i}", family="f", source_code="s",
                           source_xsbt="x", target_code="t")
        for i in range(n)
    ]


class TestSplits:
    def test_ratios_80_10_10(self):
        splits = split_examples(_examples(100))
        assert splits.sizes() == {"train": 80, "validation": 10, "test": 10}

    def test_all_examples_kept_exactly_once(self):
        examples = _examples(53)
        splits = split_examples(examples)
        ids = [e.example_id for e in splits.train + splits.validation + splits.test]
        assert sorted(ids) == sorted(e.example_id for e in examples)
        assert len(splits) == 53

    def test_deterministic_given_seed(self):
        examples = _examples(40)
        a = split_examples(examples, SplitConfig(seed=5))
        b = split_examples(examples, SplitConfig(seed=5))
        assert [e.example_id for e in a.test] == [e.example_id for e in b.test]

    def test_different_seed_changes_assignment(self):
        examples = _examples(40)
        a = split_examples(examples, SplitConfig(seed=5))
        b = split_examples(examples, SplitConfig(seed=6))
        assert [e.example_id for e in a.train] != [e.example_id for e in b.train]

    def test_invalid_fractions_raise(self):
        with pytest.raises(ValueError):
            split_examples(_examples(10), SplitConfig(train_fraction=0.9,
                                                      validation_fraction=0.2,
                                                      test_fraction=0.1))

    def test_negative_fraction_raises(self):
        with pytest.raises(ValueError):
            SplitConfig(train_fraction=1.2, validation_fraction=-0.1,
                        test_fraction=-0.1).validate()

    def test_empty_input(self):
        splits = split_examples([])
        assert len(splits) == 0
