"""Tests for the MPI-call removal ("Removed-Locations") pass."""

from repro.dataset.removal import (
    count_mpi_calls,
    find_mpi_calls_in_line,
    ground_truth_pairs,
    remove_mpi_calls,
)


class TestFindCalls:
    def test_single_call(self):
        assert find_mpi_calls_in_line("    MPI_Init(&argc, &argv);") == ["MPI_Init"]

    def test_multiple_calls_on_one_line(self):
        line = "x = MPI_Wtime(); MPI_Barrier(MPI_COMM_WORLD);"
        assert find_mpi_calls_in_line(line) == ["MPI_Wtime", "MPI_Barrier"]

    def test_constants_are_not_calls(self):
        assert find_mpi_calls_in_line("int c = MPI_COMM_WORLD;") == []

    def test_non_mpi_call(self):
        assert find_mpi_calls_in_line("printf(\"hello\");") == []


class TestRemoval:
    def test_removes_every_mpi_call(self, pi_source):
        result = remove_mpi_calls(pi_source)
        assert count_mpi_calls(result.stripped_code) == 0
        assert "MPI_Init" not in result.stripped_code
        assert "MPI_Reduce" not in result.stripped_code

    def test_ground_truth_functions_recorded_in_order(self, pi_source):
        result = remove_mpi_calls(pi_source)
        assert result.removed_functions == (
            "MPI_Init", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Reduce", "MPI_Finalize",
        )

    def test_ground_truth_lines_match_source(self, pi_source):
        result = remove_mpi_calls(pi_source)
        source_lines = pi_source.splitlines()
        for removed in result.removed:
            assert removed.function in source_lines[removed.line - 1]

    def test_non_mpi_lines_preserved(self, pi_source):
        result = remove_mpi_calls(pi_source)
        assert "for (i = rank; i < n; i += size) {" in result.stripped_code
        assert 'printf("pi = %f\\n", pi);' in result.stripped_code

    def test_stripped_code_still_parses_tolerantly(self, pi_source):
        from repro.clang.parser import parse_source

        result = remove_mpi_calls(pi_source)
        unit = parse_source(result.stripped_code, tolerant=True)
        assert unit.has_main()

    def test_embedded_call_in_if_is_kept(self):
        source = (
            "int main(int argc, char **argv) {\n"
            "    if (MPI_Init(&argc, &argv) != MPI_SUCCESS) {\n"
            "        return 1;\n"
            "    }\n"
            "    MPI_Finalize();\n"
            "    return 0;\n"
            "}\n"
        )
        result = remove_mpi_calls(source)
        # The guarded Init is structural and stays; the bare Finalize goes.
        assert "MPI_Init" in result.stripped_code
        assert "MPI_Finalize" not in result.stripped_code
        assert result.removed_functions == ("MPI_Finalize",)

    def test_assigned_call_removed(self):
        source = (
            "int main(int argc, char **argv) {\n"
            "    double t0 = MPI_Wtime();\n"
            "    return 0;\n"
            "}\n"
        )
        result = remove_mpi_calls(source)
        assert "MPI_Wtime" not in result.stripped_code
        assert result.removed_functions == ("MPI_Wtime",)

    def test_no_mpi_code_is_a_noop(self):
        source = "int main() {\n    int x = 1;\n    return x;\n}\n"
        result = remove_mpi_calls(source)
        assert result.stripped_code == source
        assert result.removed == ()

    def test_ground_truth_pairs_helper(self, pi_source):
        result = remove_mpi_calls(pi_source)
        pairs = ground_truth_pairs(result)
        assert ("MPI_Init", result.removed[0].line) == pairs[0]
        assert len(pairs) == len(result.removed)

    def test_trailing_newline_preserved(self, pi_source):
        result = remove_mpi_calls(pi_source)
        assert result.stripped_code.endswith("\n")


class TestCountCalls:
    def test_count_matches_removed(self, pi_source):
        result = remove_mpi_calls(pi_source)
        assert count_mpi_calls(pi_source) == len(result.removed)

    def test_count_zero_for_serial_code(self):
        assert count_mpi_calls("int main() { return 0; }") == 0
