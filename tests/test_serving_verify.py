"""Verification wired through the serving stack: service, jobs, metrics,
streaming skip markers and the router's pool-wide verify view."""

from __future__ import annotations

import threading

import pytest

from repro.api import AdviseRequest
from repro.model.generation import GenerationConfig
from repro.serving import InferenceService
from repro.serving.jobs import JobStore
from repro.serving.metrics import ServingMetrics
from repro.serving.router import Router, RouterPolicy
from repro.serving.server import make_server

FAST = GenerationConfig(max_length=60)

#: Parses and simulates cleanly — the reference side of verification.
RUNNABLE = """\
#include <stdio.h>
int main(int argc, char **argv) {
    int i;
    int verify_total = 0;
    for (i = 0; i < 7; i++) {
        verify_total = verify_total + i;
    }
    printf("total = %d\\n", verify_total);
    return 0;
}
"""

#: Misses a semicolon: reference capture must fail -> verification skipped.
UNPARSEABLE = "int main(int argc, char **argv) {\n    int x = 1\n    return x;\n}\n"


@pytest.fixture(scope="module")
def service(tiny_model):
    with InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                          cache_capacity=64, generation=FAST) as svc:
        yield svc


def _verify_request(code: str, verify=True) -> AdviseRequest:
    return AdviseRequest.from_dict({"code": code, "verify": verify})


def test_response_without_verify_has_no_verification_key(service):
    response = service.advise_request(
        AdviseRequest.from_dict({"code": RUNNABLE}), timeout=120)
    assert response.verification is None
    assert "verification" not in response.to_dict()


def test_unparseable_original_yields_skipped_verification(service):
    before = service.metrics().get("verify_total", 0)
    response = service.advise_request(_verify_request(UNPARSEABLE),
                                      timeout=120)
    verification = response.verification
    assert verification["verified"] == "skipped"
    assert verification["reason"] == "original program does not parse cleanly"
    snapshot = service.metrics()
    assert snapshot["verify_total"] == before + 1
    assert snapshot["verify_by_verdict"]["skipped"] >= 1


def test_runnable_original_gets_a_full_verdict_set(service):
    response = service.advise_request(_verify_request(RUNNABLE), timeout=120)
    verification = response.verification
    # The tiny fixture model cannot produce an equivalent port, but the
    # verdict must be structured, not absent.
    assert verification["verified"] in (True, False)
    assert verification["winner"] == 0
    assert isinstance(verification["verdicts"], list)
    assert verification["verdicts"][0]["status"] in (
        "parse_error", "runtime_error", "deadlocked", "diverged")
    assert verification["wall_ms"] >= 0


def test_non_skipped_verification_is_cached_by_options(service):
    calls = []
    original = service._run_verification

    def counting(request, response, options):
        calls.append(options.canonical())
        return original(request, response, options)

    service._run_verification = counting
    try:
        code = RUNNABLE.replace("verify_total", "verify_cached")
        first = service.advise_request(_verify_request(code), timeout=120)
        again = service.advise_request(_verify_request(code), timeout=120)
        assert len(calls) == 1  # second request was a verify-cache hit
        assert again.verification == first.verification
        # Different options -> different verify-cache entry -> a fresh run.
        service.advise_request(_verify_request(code, {"ranks": [1]}),
                               timeout=120)
        assert len(calls) == 2
    finally:
        service._run_verification = original


def test_skipped_verification_is_never_cached(service):
    calls = []
    original = service._run_verification

    def counting(request, response, options):
        calls.append(1)
        return original(request, response, options)

    service._run_verification = counting
    try:
        code = UNPARSEABLE.replace("int x", "int y")
        for _ in range(2):
            response = service.advise_request(_verify_request(code),
                                              timeout=120)
            assert response.verification["verified"] == "skipped"
        assert len(calls) == 2  # both requests ran; neither wrote the cache
    finally:
        service._run_verification = original


def test_exhausted_budget_degrades_to_skipped(service):
    # 2M loop iterations cannot simulate inside a 1ms budget: the reference
    # capture itself times out and the whole verification degrades to a
    # skipped marker instead of stalling the request.
    heavy = RUNNABLE.replace("i < 7", "i < 2000000").replace(
        "verify_total", "verify_budget")
    response = service.advise_request(
        _verify_request(heavy, {"timeout_ms": 1}), timeout=120)
    verification = response.verification
    assert verification["verified"] == "skipped"
    assert "original program failed under simulation" in verification["reason"]


def test_internal_verification_error_degrades_to_skipped(service):
    def exploding(request, response, options):
        raise RuntimeError("verification backend on fire")

    original = service._run_verification
    service._run_verification = exploding
    try:
        response = service.advise_request(
            _verify_request(RUNNABLE.replace("verify_total", "verify_boom")),
            timeout=120)
    finally:
        service._run_verification = original
    verification = response.verification
    assert verification["verified"] == "skipped"
    assert "RuntimeError" in verification["reason"]


def test_beam_request_verifies_multiple_candidates(service):
    request = AdviseRequest.from_dict({
        "code": RUNNABLE.replace("verify_total", "verify_beam"),
        "strategy": {"name": "beam", "beam_size": 2},
        "verify": {"candidates": 2},
    })
    response = service.advise_request(request, timeout=120)
    verification = response.verification
    if verification["verified"] == "skipped":  # budget ran out on slow CI
        assert verification["reason"]
    else:
        assert 1 <= len(verification["verdicts"]) <= 2
        assert verification["winner"] < 2


def test_stream_with_verify_attaches_the_skip_marker(service):
    chunks = list(service.advise_stream(
        _verify_request(RUNNABLE.replace("verify_total", "verify_stream"))))
    final = chunks[-1]["response"]
    assert final["verification"]["verified"] == "skipped"
    assert "POST /v1/advise" in final["verification"]["reason"]


def test_stream_without_verify_keeps_the_v11_shape(service):
    chunks = list(service.advise_stream(AdviseRequest.from_dict(
        {"code": RUNNABLE.replace("verify_total", "verify_plain")})))
    assert "verification" not in chunks[-1]["response"]


def test_job_items_with_verify_carry_verification(service):
    store = JobStore(service)
    try:
        job = store.submit([
            _verify_request(UNPARSEABLE.replace("int x", "int job_item")),
            AdviseRequest.from_dict({"code": "int job_plain;"}),
        ])
        assert job.wait(timeout=120)
        body = job.to_dict()
        by_index = {item["index"]: item for item in body["results"]}
        verified_item = by_index[0]["response"]
        assert verified_item["verification"]["verified"] == "skipped"
        assert "verification" not in by_index[1]["response"]
    finally:
        store.close()


# ------------------------------------------------------------------ metrics


def test_metrics_expose_verify_counters_and_latency():
    metrics = ServingMetrics()
    metrics.record_verify(12.0, "verified")
    metrics.record_verify(18.0, "failed")
    metrics.record_verify(2.0, "skipped")
    snapshot = metrics.snapshot()
    assert snapshot["verify_total"] == 3
    assert snapshot["verify_by_verdict"] == {
        "verified": 1, "failed": 1, "skipped": 1}
    assert snapshot["verify_latency_ms_p50"] == 12.0
    assert snapshot["verify_latency_ms_p95"] == 18.0


def test_verify_verdict_cardinality_is_capped():
    metrics = ServingMetrics()
    for index in range(ServingMetrics.MAX_CONFIG_LABELS + 10):
        metrics.record_verify(1.0, f"verdict-{index}")
    by_verdict = metrics.snapshot()["verify_by_verdict"]
    assert len(by_verdict) <= ServingMetrics.MAX_CONFIG_LABELS + 1
    assert by_verdict["other"] >= 10


# ------------------------------------------------------------------- router


def test_router_aggregates_worker_verify_counters(tiny_model):
    service = InferenceService(tiny_model, cache_capacity=16, generation=FAST)
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        service.advise_request(_verify_request(UNPARSEABLE), timeout=120)
        router = Router(endpoints=[("w0", host, port)],
                        policy=RouterPolicy(health_interval=0.0))
        aggregated = router.metrics_body()["verify"]
        assert aggregated["workers_reporting"] == 1
        assert aggregated["workers_unreachable"] == 0
        assert aggregated["verify_total"] >= 1
        assert aggregated["verify_by_verdict"].get("skipped", 0) >= 1
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_router_verify_view_counts_unreachable_workers():
    router = Router(endpoints=[("w0", "127.0.0.1", 1)],
                    policy=RouterPolicy(health_interval=0.0))
    aggregated = router.metrics_body()["verify"]
    assert aggregated["verify_total"] == 0
    assert aggregated["workers_reporting"] == 0
    assert aggregated["workers_unreachable"] == 1
