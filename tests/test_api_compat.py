"""Backward-compat shim regression: legacy surfaces behave bit-identically.

Satellite of ISSUE 4: the pre-v1 spellings — ``/advise`` bodies,
``predict_*(beam_size=, length_penalty=)``, ``service.advise(beam_size=)`` —
must keep producing byte-identical results while emitting a single
:class:`DeprecationWarning`, with the v1 strategy path as the one
implementation underneath.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import AdviseRequest
from repro.model.decoding import BeamStrategy, GreedyStrategy
from repro.model.generation import GenerationConfig
from repro.serving import InferenceService

FAST = GenerationConfig(max_length=60)


@pytest.fixture(scope="module")
def service(tiny_model):
    with InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                          cache_capacity=64, generation=FAST) as svc:
        yield svc


def _single_deprecation(caught) -> None:
    assert len([w for w in caught
                if issubclass(w.category, DeprecationWarning)]) == 1


# -------------------------------------------------------------- predict_*


def test_predict_legacy_kwargs_warn_once_and_match_strategy_path(tiny_model,
                                                                 pi_source):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = tiny_model.predict_code(pi_source, beam_size=2,
                                         length_penalty=0.6)
    _single_deprecation(caught)
    via_strategy = tiny_model.predict_code(
        pi_source, strategy=BeamStrategy(beam_size=2, length_penalty=0.6))
    assert legacy == via_strategy


def test_predict_generation_config_still_maps_onto_strategies(tiny_model,
                                                              pi_source):
    """The pre-strategy generation= spelling keeps working unwarned and is
    bitwise identical to the explicit strategy path (the acceptance bar:
    greedy and beam outputs unchanged by the refactor)."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        greedy = tiny_model.predict_tokens(pi_source)
        beam = tiny_model.predict_tokens(
            pi_source, generation=GenerationConfig(max_length=400, beam_size=2,
                                                   length_penalty=0.6))
    assert greedy == tiny_model.predict_tokens(pi_source,
                                               strategy=GreedyStrategy())
    assert beam == tiny_model.predict_tokens(
        pi_source, strategy=BeamStrategy(beam_size=2, length_penalty=0.6))


def test_predict_rejects_mixing_legacy_kwargs_with_strategy(tiny_model,
                                                            pi_source):
    with pytest.raises(ValueError, match="not both"):
        tiny_model.predict_code(pi_source, strategy=GreedyStrategy(),
                                beam_size=2)


# ---------------------------------------------------------------- service


def test_service_legacy_kwargs_warn_once_and_share_the_v1_cache(service,
                                                                pi_source):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = service.advise(pi_source, beam_size=2, length_penalty=0.6,
                                timeout=120)
    _single_deprecation(caught)

    request = AdviseRequest(code=pi_source,
                            strategy=BeamStrategy(beam_size=2,
                                                  length_penalty=0.6))
    response = service.advise_request(request, timeout=120)
    # One cache identity: the v1 request is answered by the legacy decode.
    assert response.cached is True
    assert response.cache_key == legacy.cache_key
    assert response.generated_code == legacy.session.generated_code


def test_partial_legacy_overrides_merge_onto_the_service_default(tiny_model):
    """Pre-v1 semantics: beam_size= alone keeps the configured length
    penalty, length_penalty= alone keeps the configured beam size."""
    base = GenerationConfig(max_length=60, beam_size=3, length_penalty=0.7)
    with InferenceService(tiny_model, max_batch_size=2, max_wait_ms=2,
                          cache_capacity=8, generation=base) as svc:
        assert svc.legacy_strategy(4, None) == BeamStrategy(
            beam_size=4, length_penalty=0.7)
        assert svc.legacy_strategy(None, 0.9) == BeamStrategy(
            beam_size=3, length_penalty=0.9)
        assert svc.legacy_strategy(1, None) == GreedyStrategy()
        with pytest.raises(ValueError, match="beam_size"):
            svc.legacy_strategy(99, None)


def test_plain_service_advise_does_not_warn(service, pi_source):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        served = service.advise(pi_source, timeout=120)
    assert served.session.generated_code


def test_served_advice_keeps_the_legacy_generation_view(service, pi_source):
    served = service.advise(pi_source, strategy=BeamStrategy(beam_size=2),
                            timeout=120)
    assert served.generation.beam_size == 2
    assert served.generation.max_length == FAST.max_length
    assert served.strategy == BeamStrategy(beam_size=2)


def test_legacy_penalty_echo_survives_greedy_normalisation(service, pi_source):
    """Pre-v1 echo semantics: a greedy request with an explicit penalty
    echoes that penalty (the merged config), even though the penalty is
    normalised away for caching/batching."""
    from repro.serving.server import advice_payload

    served = service.advise_legacy_async(pi_source, None, 0.9).result(120)
    assert served.strategy == GreedyStrategy()          # the decode identity
    payload = advice_payload(served)
    assert payload["beam_size"] == 1
    assert payload["length_penalty"] == 0.9             # the faithful echo
    # ... and it shares the greedy cache entry (penalty only reranks beams).
    assert service.advise(pi_source, timeout=120).cache_key == served.cache_key


def test_legacy_http_payload_shape(service, pi_source):
    """advice_payload (the /advise body) keeps the exact pre-v1 key set and
    order — the byte-identical response surface of the shim."""
    from repro.serving.server import advice_payload

    served = service.advise(pi_source, timeout=120)
    payload = advice_payload(served)
    assert list(payload) == ["generated_code", "advice", "diagnostics",
                             "cached", "latency_ms", "cache_key",
                             "beam_size", "length_penalty"]
    for item in payload["advice"]:
        assert set(item) >= {"function", "insert_after_line", "statement",
                             "confidence", "note", "rendered"}
