"""End-to-end HTTP serving smoke tests: /advise, /healthz, /metrics, errors."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.generation import GenerationConfig
from repro.serving import InferenceService
from repro.serving.server import make_server


@pytest.fixture(scope="module")
def endpoint(tiny_model):
    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               num_workers=2, cache_capacity=64,
                               generation=GenerationConfig(max_length=60))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _post(url: str, payload: bytes, content_type: str = "application/json"):
    request = urllib.request.Request(url, data=payload,
                                     headers={"Content-Type": content_type})
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def test_advise_roundtrip_and_cache_hit(endpoint, pi_source):
    payload = json.dumps({"code": pi_source}).encode()
    status, body = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert set(body) >= {"generated_code", "advice", "diagnostics", "cached",
                         "latency_ms", "cache_key"}
    for item in body["advice"]:
        assert set(item) >= {"function", "insert_after_line", "statement",
                             "confidence", "note", "rendered"}

    # The acceptance-criteria flow: the second identical request is a hit.
    status, again = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert again["cached"] is True
    assert again["generated_code"] == body["generated_code"]
    assert again["cache_key"] == body["cache_key"]


def test_healthz(endpoint):
    status, body = _get(f"{endpoint}/healthz")
    assert status == 200
    assert body == {"status": "ok"}


def test_metrics_reflect_served_traffic(endpoint, pi_source):
    payload = json.dumps({"code": pi_source}).encode()
    _post(f"{endpoint}/advise", payload)
    _post(f"{endpoint}/advise", payload)    # guaranteed cache hit
    status, body = _get(f"{endpoint}/metrics")
    assert status == 200
    assert body["requests_total"] >= 2
    assert body["cache_hits"] >= 1
    assert "batch_size_histogram" in body
    assert body["cache"]["capacity"] == 64


def test_beam_request_roundtrip(endpoint, pi_source):
    """The beam request schema: beam_size/length_penalty are honoured, echoed
    in the response, and cached separately from the greedy entry."""
    greedy_payload = json.dumps({"code": pi_source}).encode()
    _, greedy_body = _post(f"{endpoint}/advise", greedy_payload)

    payload = json.dumps({"code": pi_source, "beam_size": 2,
                          "length_penalty": 0.6}).encode()
    status, body = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert body["beam_size"] == 2
    assert body["length_penalty"] == 0.6
    assert body["cache_key"] != greedy_body["cache_key"]

    status, again = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert again["cached"] is True
    assert again["generated_code"] == body["generated_code"]


@pytest.mark.parametrize("fields, fragment", [
    ({"beam_size": 0}, "beam_size"),
    ({"beam_size": 99}, "beam_size"),
    ({"beam_size": "four"}, "beam_size"),
    ({"beam_size": True}, "beam_size"),
    ({"length_penalty": -1}, "length_penalty"),
    ({"length_penalty": "low"}, "length_penalty"),
    # json.loads accepts these non-standard tokens; the server must not.
    ({"length_penalty": float("nan")}, "length_penalty"),
    ({"length_penalty": float("inf")}, "length_penalty"),
])
def test_bad_generation_fields_are_400(endpoint, pi_source, fields, fragment):
    payload = json.dumps({"code": pi_source, **fields}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/advise", payload)
    assert excinfo.value.code == 400
    assert fragment in json.loads(excinfo.value.read())["error"]


@pytest.mark.parametrize("payload, fragment", [
    (b"this is not json", "invalid JSON"),
    (json.dumps({"wrong_field": 1}).encode(), "code"),
    (json.dumps({"code": "   "}).encode(), "code"),
])
def test_bad_requests_are_400(endpoint, payload, fragment):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/advise", payload)
    assert excinfo.value.code == 400
    assert fragment in json.loads(excinfo.value.read())["error"]


def test_unknown_paths_are_404(endpoint):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{endpoint}/nope")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/nope", b"{}")
    assert excinfo.value.code == 404


def test_concurrent_http_clients(endpoint, small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:4]]
    results: dict[int, dict] = {}
    errors: list[Exception] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        try:
            payload = json.dumps({"code": sources[index]}).encode()
            status, body = _post(f"{endpoint}/advise", payload)
            assert status == 200
            with lock:
                results[index] = body
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(sources))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == len(sources)
    for body in results.values():
        assert "generated_code" in body
