"""End-to-end HTTP serving smoke tests: /advise, /healthz, /metrics, errors."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.generation import GenerationConfig
from repro.serving import InferenceService
from repro.serving.server import make_server


@pytest.fixture(scope="module")
def endpoint(tiny_model):
    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               num_workers=2, cache_capacity=64,
                               generation=GenerationConfig(max_length=60))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _post(url: str, payload: bytes, content_type: str = "application/json"):
    request = urllib.request.Request(url, data=payload,
                                     headers={"Content-Type": content_type})
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def test_advise_roundtrip_and_cache_hit(endpoint, pi_source):
    payload = json.dumps({"code": pi_source}).encode()
    status, body = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert set(body) >= {"generated_code", "advice", "diagnostics", "cached",
                         "latency_ms", "cache_key"}
    for item in body["advice"]:
        assert set(item) >= {"function", "insert_after_line", "statement",
                             "confidence", "note", "rendered"}

    # The acceptance-criteria flow: the second identical request is a hit.
    status, again = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert again["cached"] is True
    assert again["generated_code"] == body["generated_code"]
    assert again["cache_key"] == body["cache_key"]


def test_healthz(endpoint):
    status, body = _get(f"{endpoint}/healthz")
    assert status == 200
    assert body == {"status": "ok"}


def test_metrics_reflect_served_traffic(endpoint, pi_source):
    payload = json.dumps({"code": pi_source}).encode()
    _post(f"{endpoint}/advise", payload)
    _post(f"{endpoint}/advise", payload)    # guaranteed cache hit
    status, body = _get(f"{endpoint}/metrics")
    assert status == 200
    assert body["requests_total"] >= 2
    assert body["cache_hits"] >= 1
    assert "batch_size_histogram" in body
    assert body["cache"]["capacity"] == 64


def test_beam_request_roundtrip(endpoint, pi_source):
    """The beam request schema: beam_size/length_penalty are honoured, echoed
    in the response, and cached separately from the greedy entry."""
    greedy_payload = json.dumps({"code": pi_source}).encode()
    _, greedy_body = _post(f"{endpoint}/advise", greedy_payload)

    payload = json.dumps({"code": pi_source, "beam_size": 2,
                          "length_penalty": 0.6}).encode()
    status, body = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert body["beam_size"] == 2
    assert body["length_penalty"] == 0.6
    assert body["cache_key"] != greedy_body["cache_key"]

    status, again = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert again["cached"] is True
    assert again["generated_code"] == body["generated_code"]


def _error_body(excinfo) -> dict:
    """The structured envelope: {"error": {"code", "message", "field"}}."""
    body = json.loads(excinfo.value.read())
    envelope = body["error"]
    assert set(envelope) == {"code", "message", "field"}
    return envelope


@pytest.mark.parametrize("fields, status, fragment", [
    # Out-of-range values are 422 (semantically invalid)...
    ({"beam_size": 0}, 422, "beam_size"),
    ({"beam_size": 99}, 422, "beam_size"),
    ({"length_penalty": -1}, 422, "length_penalty"),
    # json.loads accepts these non-standard tokens; the server must not.
    ({"length_penalty": float("nan")}, 422, "length_penalty"),
    ({"length_penalty": float("inf")}, 422, "length_penalty"),
    # ... while type errors are 400 (malformed request).
    ({"beam_size": "four"}, 400, "beam_size"),
    ({"beam_size": True}, 400, "beam_size"),
    ({"length_penalty": "low"}, 400, "length_penalty"),
])
def test_bad_generation_fields_are_rejected(endpoint, pi_source, fields,
                                            status, fragment):
    payload = json.dumps({"code": pi_source, **fields}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/advise", payload)
    assert excinfo.value.code == status
    envelope = _error_body(excinfo)
    assert fragment in envelope["message"]
    assert envelope["field"] == fragment


@pytest.mark.parametrize("payload, fragment", [
    (b"this is not json", "invalid JSON"),
    (json.dumps({"wrong_field": 1}).encode(), "code"),
    (json.dumps({"code": "   "}).encode(), "code"),
])
def test_bad_requests_are_400(endpoint, payload, fragment):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/advise", payload)
    assert excinfo.value.code == 400
    envelope = _error_body(excinfo)
    assert envelope["code"] == "invalid_request"
    assert fragment in envelope["message"]


@pytest.mark.parametrize("path", ["/advise", "/v1/advise"])
@pytest.mark.parametrize("payload, status, field", [
    (b"not json at all", 400, None),
    (json.dumps({"code": ""}).encode(), 400, "code"),
    (json.dumps({"code": "int main() {}", "beam_size": 0}).encode(),
     422, "beam_size"),
])
def test_error_envelope_is_uniform_across_routes(endpoint, path, payload,
                                                 status, field):
    """Both the legacy and v1 routes answer with the same structured
    envelope and the same 400/422 split (the v1 spelling of beam_size=0 is
    a strategy object)."""
    if path == "/v1/advise" and b"beam_size" in payload:
        payload = json.dumps({"code": "int main() {}",
                              "strategy": {"name": "beam",
                                           "beam_size": 0}}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}{path}", payload)
    assert excinfo.value.code == status
    envelope = _error_body(excinfo)
    assert envelope["field"] == field


# ------------------------------------------------------------------- v1 API


def test_v1_advise_roundtrip(endpoint, pi_source):
    """POST /v1/advise speaks the AdviseRequest/AdviseResponse contract."""
    payload = json.dumps({"code": pi_source,
                          "strategy": {"name": "beam", "beam_size": 2,
                                       "length_penalty": 0.6}}).encode()
    status, body = _post(f"{endpoint}/v1/advise", payload)
    assert status == 200
    assert body["api_version"] == "v1"
    assert set(body) >= {"generated_code", "advice", "diagnostics", "strategy",
                         "cached", "latency_ms", "cache_key"}
    assert body["strategy"] == {"name": "beam", "beam_size": 2,
                                "length_penalty": 0.6}

    # The legacy route and the v1 route hit the same cache entry: the shim
    # really delegates to the one v1 path.
    legacy = json.dumps({"code": pi_source, "beam_size": 2,
                         "length_penalty": 0.6}).encode()
    status, legacy_body = _post(f"{endpoint}/advise", legacy)
    assert status == 200
    assert legacy_body["cache_key"] == body["cache_key"]
    assert legacy_body["cached"] is True
    assert legacy_body["generated_code"] == body["generated_code"]


def test_v1_advise_rejects_unknown_fields(endpoint, pi_source):
    payload = json.dumps({"code": pi_source, "beam_size": 2}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise", payload)
    assert excinfo.value.code == 400
    assert _error_body(excinfo)["field"] == "beam_size"


def test_v1_sample_strategy_is_served_and_cached_by_seed(endpoint, pi_source):
    def request(seed):
        payload = json.dumps({"code": pi_source,
                              "strategy": {"name": "sample", "temperature": 0.7,
                                           "seed": seed}}).encode()
        return _post(f"{endpoint}/v1/advise", payload)[1]

    first = request(11)
    again = request(11)
    other = request(12)
    assert again["cached"] is True
    assert again["generated_code"] == first["generated_code"]
    # A different seed is a different cache identity (it may or may not
    # generate different tokens on a tiny model, but it must not be served
    # the other seed's cache entry).
    assert other["cache_key"] != first["cache_key"]


def test_v1_stream_emits_incremental_chunks_then_final(endpoint, pi_source):
    """The acceptance bar: >= 2 incremental NDJSON token chunks arrive
    before the final result for a multi-token generation."""
    payload = json.dumps({"code": pi_source}).encode()
    request = urllib.request.Request(
        f"{endpoint}/v1/advise/stream", data=payload,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in response.read().splitlines()]
    assert len(lines) >= 3
    tokens, final = lines[:-1], lines[-1]
    assert final["type"] == "final"
    assert all(chunk["type"] == "token" for chunk in tokens)
    assert len(tokens) >= 2
    assert [chunk["index"] for chunk in tokens] == list(range(len(tokens)))
    # The streamed tokens are exactly the final generated token stream.
    body = final["response"]
    assert body["api_version"] == "v1"
    assert body["generated_code"]
    # A non-stream request for the same buffer shares the cache entry.
    status, direct = _post(f"{endpoint}/v1/advise", payload)
    assert status == 200
    assert direct["cache_key"] == body["cache_key"]
    assert direct["cached"] is True


def test_v1_stream_rejects_invalid_requests_with_envelope(endpoint):
    payload = json.dumps({"code": "int main() {}",
                          "strategy": {"name": "sample",
                                       "temperature": -1}}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise/stream", payload)
    assert excinfo.value.code == 422
    assert _error_body(excinfo)["field"] == "temperature"


def test_unknown_paths_are_404(endpoint):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{endpoint}/nope")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/nope", b"{}")
    assert excinfo.value.code == 404


def test_concurrent_http_clients(endpoint, small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:4]]
    results: dict[int, dict] = {}
    errors: list[Exception] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        try:
            payload = json.dumps({"code": sources[index]}).encode()
            status, body = _post(f"{endpoint}/advise", payload)
            assert status == 200
            with lock:
                results[index] = body
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(sources))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == len(sources)
    for body in results.values():
        assert "generated_code" in body
