"""End-to-end HTTP serving smoke tests: /advise, /healthz, /metrics, errors."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.generation import GenerationConfig
from repro.serving import InferenceService
from repro.serving.server import make_server


@pytest.fixture(scope="module")
def endpoint(tiny_model):
    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               num_workers=2, cache_capacity=64,
                               generation=GenerationConfig(max_length=60))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _post(url: str, payload: bytes, content_type: str = "application/json"):
    request = urllib.request.Request(url, data=payload,
                                     headers={"Content-Type": content_type})
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def test_advise_roundtrip_and_cache_hit(endpoint, pi_source):
    payload = json.dumps({"code": pi_source}).encode()
    status, body = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert set(body) >= {"generated_code", "advice", "diagnostics", "cached",
                         "latency_ms", "cache_key"}
    for item in body["advice"]:
        assert set(item) >= {"function", "insert_after_line", "statement",
                             "confidence", "note", "rendered"}

    # The acceptance-criteria flow: the second identical request is a hit.
    status, again = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert again["cached"] is True
    assert again["generated_code"] == body["generated_code"]
    assert again["cache_key"] == body["cache_key"]


def test_healthz_reports_registry_state(endpoint):
    status, body = _get(f"{endpoint}/healthz")
    assert status == 200
    assert body["status"] == "ok"
    # The registry state: a default alias identity and per-model entries.
    assert body["default"] == f"default@{body['models']['default']['revision']}"
    model = body["models"]["default"]
    assert model["loaded"] is True
    assert isinstance(model["revision"], str) and len(model["revision"]) == 12
    assert model["requests_served"] >= 0


def test_metrics_reflect_served_traffic(endpoint, pi_source):
    payload = json.dumps({"code": pi_source}).encode()
    _post(f"{endpoint}/advise", payload)
    _post(f"{endpoint}/advise", payload)    # guaranteed cache hit
    status, body = _get(f"{endpoint}/metrics")
    assert status == 200
    assert body["requests_total"] >= 2
    assert body["cache_hits"] >= 1
    assert "batch_size_histogram" in body
    assert body["cache"]["capacity"] == 64


def test_beam_request_roundtrip(endpoint, pi_source):
    """The beam request schema: beam_size/length_penalty are honoured, echoed
    in the response, and cached separately from the greedy entry."""
    greedy_payload = json.dumps({"code": pi_source}).encode()
    _, greedy_body = _post(f"{endpoint}/advise", greedy_payload)

    payload = json.dumps({"code": pi_source, "beam_size": 2,
                          "length_penalty": 0.6}).encode()
    status, body = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert body["beam_size"] == 2
    assert body["length_penalty"] == 0.6
    assert body["cache_key"] != greedy_body["cache_key"]

    status, again = _post(f"{endpoint}/advise", payload)
    assert status == 200
    assert again["cached"] is True
    assert again["generated_code"] == body["generated_code"]


def _error_body(excinfo) -> dict:
    """The structured envelope: {"error": {"code", "message", "field"}}."""
    body = json.loads(excinfo.value.read())
    envelope = body["error"]
    assert set(envelope) == {"code", "message", "field"}
    return envelope


@pytest.mark.parametrize("fields, status, fragment", [
    # Out-of-range values are 422 (semantically invalid)...
    ({"beam_size": 0}, 422, "beam_size"),
    ({"beam_size": 99}, 422, "beam_size"),
    ({"length_penalty": -1}, 422, "length_penalty"),
    # json.loads accepts these non-standard tokens; the server must not.
    ({"length_penalty": float("nan")}, 422, "length_penalty"),
    ({"length_penalty": float("inf")}, 422, "length_penalty"),
    # ... while type errors are 400 (malformed request).
    ({"beam_size": "four"}, 400, "beam_size"),
    ({"beam_size": True}, 400, "beam_size"),
    ({"length_penalty": "low"}, 400, "length_penalty"),
])
def test_bad_generation_fields_are_rejected(endpoint, pi_source, fields,
                                            status, fragment):
    payload = json.dumps({"code": pi_source, **fields}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/advise", payload)
    assert excinfo.value.code == status
    envelope = _error_body(excinfo)
    assert fragment in envelope["message"]
    assert envelope["field"] == fragment


@pytest.mark.parametrize("payload, fragment", [
    (b"this is not json", "invalid JSON"),
    (json.dumps({"wrong_field": 1}).encode(), "code"),
    (json.dumps({"code": "   "}).encode(), "code"),
])
def test_bad_requests_are_400(endpoint, payload, fragment):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/advise", payload)
    assert excinfo.value.code == 400
    envelope = _error_body(excinfo)
    assert envelope["code"] == "invalid_request"
    assert fragment in envelope["message"]


@pytest.mark.parametrize("path", ["/advise", "/v1/advise"])
@pytest.mark.parametrize("payload, status, field", [
    (b"not json at all", 400, None),
    (json.dumps({"code": ""}).encode(), 400, "code"),
    (json.dumps({"code": "int main() {}", "beam_size": 0}).encode(),
     422, "beam_size"),
])
def test_error_envelope_is_uniform_across_routes(endpoint, path, payload,
                                                 status, field):
    """Both the legacy and v1 routes answer with the same structured
    envelope and the same 400/422 split (the v1 spelling of beam_size=0 is
    a strategy object)."""
    if path == "/v1/advise" and b"beam_size" in payload:
        payload = json.dumps({"code": "int main() {}",
                              "strategy": {"name": "beam",
                                           "beam_size": 0}}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}{path}", payload)
    assert excinfo.value.code == status
    envelope = _error_body(excinfo)
    assert envelope["field"] == field


# ------------------------------------------------------------------- v1 API


def test_v1_advise_roundtrip(endpoint, pi_source):
    """POST /v1/advise speaks the AdviseRequest/AdviseResponse contract."""
    payload = json.dumps({"code": pi_source,
                          "strategy": {"name": "beam", "beam_size": 2,
                                       "length_penalty": 0.6}}).encode()
    status, body = _post(f"{endpoint}/v1/advise", payload)
    assert status == 200
    assert body["api_version"] == "v1"
    assert set(body) >= {"generated_code", "advice", "diagnostics", "strategy",
                         "cached", "latency_ms", "cache_key"}
    assert body["strategy"] == {"name": "beam", "beam_size": 2,
                                "length_penalty": 0.6}

    # The legacy route and the v1 route hit the same cache entry: the shim
    # really delegates to the one v1 path.
    legacy = json.dumps({"code": pi_source, "beam_size": 2,
                         "length_penalty": 0.6}).encode()
    status, legacy_body = _post(f"{endpoint}/advise", legacy)
    assert status == 200
    assert legacy_body["cache_key"] == body["cache_key"]
    assert legacy_body["cached"] is True
    assert legacy_body["generated_code"] == body["generated_code"]


def test_v1_advise_rejects_unknown_fields(endpoint, pi_source):
    payload = json.dumps({"code": pi_source, "beam_size": 2}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise", payload)
    assert excinfo.value.code == 400
    assert _error_body(excinfo)["field"] == "beam_size"


def test_v1_sample_strategy_is_served_and_cached_by_seed(endpoint, pi_source):
    def request(seed):
        payload = json.dumps({"code": pi_source,
                              "strategy": {"name": "sample", "temperature": 0.7,
                                           "seed": seed}}).encode()
        return _post(f"{endpoint}/v1/advise", payload)[1]

    first = request(11)
    again = request(11)
    other = request(12)
    assert again["cached"] is True
    assert again["generated_code"] == first["generated_code"]
    # A different seed is a different cache identity (it may or may not
    # generate different tokens on a tiny model, but it must not be served
    # the other seed's cache entry).
    assert other["cache_key"] != first["cache_key"]


def test_v1_stream_emits_incremental_chunks_then_final(endpoint, pi_source):
    """The acceptance bar: >= 2 incremental NDJSON token chunks arrive
    before the final result for a multi-token generation."""
    payload = json.dumps({"code": pi_source}).encode()
    request = urllib.request.Request(
        f"{endpoint}/v1/advise/stream", data=payload,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in response.read().splitlines()]
    assert len(lines) >= 3
    tokens, final = lines[:-1], lines[-1]
    assert final["type"] == "final"
    assert all(chunk["type"] == "token" for chunk in tokens)
    assert len(tokens) >= 2
    assert [chunk["index"] for chunk in tokens] == list(range(len(tokens)))
    # The streamed tokens are exactly the final generated token stream.
    body = final["response"]
    assert body["api_version"] == "v1"
    assert body["generated_code"]
    # A non-stream request for the same buffer shares the cache entry.
    status, direct = _post(f"{endpoint}/v1/advise", payload)
    assert status == 200
    assert direct["cache_key"] == body["cache_key"]
    assert direct["cached"] is True


def test_v1_stream_rejects_invalid_requests_with_envelope(endpoint):
    payload = json.dumps({"code": "int main() {}",
                          "strategy": {"name": "sample",
                                       "temperature": -1}}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise/stream", payload)
    assert excinfo.value.code == 422
    assert _error_body(excinfo)["field"] == "temperature"


def test_unknown_paths_are_404(endpoint):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{endpoint}/nope")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/nope", b"{}")
    assert excinfo.value.code == 404


# ------------------------------------------------------- model lifecycle API


def test_metrics_report_registry_and_per_model_traffic(endpoint, pi_source):
    _post(f"{endpoint}/advise", json.dumps({"code": pi_source}).encode())
    status, body = _get(f"{endpoint}/metrics")
    assert status == 200
    registry = body["registry"]
    assert registry["aliases"]["default"] == "default"
    assert [m["name"] for m in registry["models"]] == ["default"]
    assert registry["models"][0]["loaded"] is True
    # Every served request lands under its resolved name@revision label.
    assert body["requests_by_model"]
    assert all(label.startswith("default@")
               for label in body["requests_by_model"])
    assert sum(body["requests_by_model"].values()) >= 1


def test_v1_models_lists_the_registry(endpoint):
    status, body = _get(f"{endpoint}/v1/models")
    assert status == 200
    assert body["api_version"] == "v1"
    assert body["aliases"] == {"default": "default"}
    (model,) = body["models"]
    assert model["name"] == "default"
    assert body["default"] == f"default@{model['revision']}"
    assert model["source"] == "in-memory"


def test_v1_advise_with_model_reference_echoes_resolved_identity(endpoint,
                                                                 pi_source):
    """Pinning model= (even as the alias) adds the resolved name@revision to
    the response; omitting it keeps the v1.0 response shape exactly."""
    plain = json.dumps({"code": pi_source}).encode()
    status, body = _post(f"{endpoint}/v1/advise", plain)
    assert status == 200
    assert "model" not in body

    pinned = json.dumps({"code": pi_source, "model": "default"}).encode()
    status, with_model = _post(f"{endpoint}/v1/advise", pinned)
    assert status == 200
    assert with_model["model"].startswith("default@")
    # Same model, same strategy, same buffer: one cache identity regardless
    # of whether the request spelled the model out.
    assert with_model["cache_key"] == body["cache_key"]
    assert with_model["cached"] is True

    # The fully-pinned name@revision spelling resolves too.
    exact = json.dumps({"code": pi_source,
                        "model": with_model["model"]}).encode()
    status, exact_body = _post(f"{endpoint}/v1/advise", exact)
    assert status == 200
    assert exact_body["model"] == with_model["model"]


def test_v1_advise_unknown_model_is_422(endpoint, pi_source):
    payload = json.dumps({"code": pi_source, "model": "nope"}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise", payload)
    assert excinfo.value.code == 422
    envelope = _error_body(excinfo)
    assert envelope["code"] == "unknown_model"
    assert envelope["field"] == "model"


def test_v1_advise_stale_revision_pin_is_422(endpoint, pi_source):
    payload = json.dumps({"code": pi_source,
                          "model": "default@000000000000"}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise", payload)
    assert excinfo.value.code == 422
    assert _error_body(excinfo)["code"] == "unknown_model"


def test_model_load_and_swap_roundtrip(endpoint, tiny_model, tmp_path):
    """Register-and-load a checkpoint over HTTP, then atomically flip the
    default alias to it and back."""
    checkpoint = tiny_model.save(tmp_path / "lifecycle-ckpt")
    status, body = _post(
        f"{endpoint}/v1/models/lifecycle/load",
        json.dumps({"checkpoint": str(checkpoint)}).encode())
    assert status == 200
    assert body["model"]["name"] == "lifecycle"
    assert body["model"]["loaded"] is True
    # Same weights/config/vocab => same content-hash revision as the
    # in-memory registration of the very same pipeline.
    status, models = _get(f"{endpoint}/v1/models")
    by_name = {m["name"]: m for m in models["models"]}
    assert by_name["lifecycle"]["revision"] == by_name["default"]["revision"]

    status, swap = _post(f"{endpoint}/v1/models/lifecycle/swap", b"")
    assert status == 200
    assert swap["previous"].startswith("default@")
    assert swap["current"].startswith("lifecycle@")
    status, health = _get(f"{endpoint}/healthz")
    assert health["default"].startswith("lifecycle@")

    # Flip back so the module-scoped endpoint keeps its original default.
    status, swap = _post(f"{endpoint}/v1/models/default/swap",
                         json.dumps({"alias": "default"}).encode())
    assert status == 200
    assert swap["current"].startswith("default@")


def test_model_load_missing_checkpoint_is_422(endpoint):
    payload = json.dumps({"checkpoint": "/nonexistent/ckpt"}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/models/ghost/load", payload)
    assert excinfo.value.code == 422
    assert _error_body(excinfo)["field"] == "checkpoint"


def test_swap_to_unknown_model_is_422(endpoint):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/models/missing/swap", b"")
    assert excinfo.value.code == 422
    assert _error_body(excinfo)["code"] == "unknown_model"


def test_batch_job_submit_and_poll(endpoint, pi_source):
    """POST /v1/advise/batch answers 202 + job id; polling reaches "done"
    with one ok envelope per item (and items share the interactive cache)."""
    import time

    items = [{"code": pi_source},
             {"code": pi_source, "strategy": {"name": "beam", "beam_size": 2}},
             {"code": pi_source, "model": "no-such-model"}]
    status, job = _post(f"{endpoint}/v1/advise/batch",
                        json.dumps({"items": items}).encode())
    assert status == 202
    assert job["status"] in ("queued", "running", "done")
    assert job["total"] == 3

    deadline = time.monotonic() + 120
    while job["status"] != "done" and time.monotonic() < deadline:
        time.sleep(0.05)
        _, job = _get(f"{endpoint}/v1/jobs/{job['job_id']}")
    assert job["status"] == "done"
    assert job["completed"] == 3
    by_index = {item["index"]: item for item in job["results"]}
    assert by_index[0]["status"] == "ok"
    assert by_index[0]["response"]["api_version"] == "v1"
    assert by_index[1]["status"] == "ok"
    assert by_index[1]["response"]["strategy"]["name"] == "beam"
    # The bad item failed alone, with the standard error envelope.
    assert by_index[2]["status"] == "error"
    assert by_index[2]["error"]["code"] == "unknown_model"


def test_batch_rejects_malformed_submissions_atomically(endpoint, pi_source):
    bad = {"items": [{"code": pi_source}, {"code": pi_source, "oops": 1}]}
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise/batch", json.dumps(bad).encode())
    assert excinfo.value.code == 400
    assert _error_body(excinfo)["field"] == "items[1].oops"

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{endpoint}/v1/advise/batch",
              json.dumps({"items": []}).encode())
    assert excinfo.value.code == 400


def test_unknown_job_is_404(endpoint):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{endpoint}/v1/jobs/job-999999")
    assert excinfo.value.code == 404


def test_concurrent_http_clients(endpoint, small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:4]]
    results: dict[int, dict] = {}
    errors: list[Exception] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        try:
            payload = json.dumps({"code": sources[index]}).encode()
            status, body = _post(f"{endpoint}/advise", payload)
            assert status == 200
            with lock:
                results[index] = body
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(len(sources))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == len(sources)
    for body in results.values():
        assert "generated_code" in body


# ----------------------------------------------------- durable job tier (HTTP)


def _post_headers(url: str, payload: dict, headers: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **headers})
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def backpressure_endpoint(tiny_model):
    """A server whose job store is tight (queue of 2, one job per client) and
    *gated*: decodes only complete once the yielded gate opens, so unfinished
    backlog is deterministic."""
    from concurrent.futures import Future

    from repro.serving import JobPolicy, JobStore

    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               cache_capacity=16,
                               generation=GenerationConfig(max_length=60))
    gate = threading.Event()

    class _GatedProxy:
        """Forwards decodes to the real service, but only after the gate."""

        def advise_request_async(self, request):
            future: Future = Future()

            def _run() -> None:
                gate.wait()
                try:
                    future.set_result(service.advise_request(request))
                except Exception as exc:  # noqa: BLE001 — delivered via future
                    future.set_exception(exc)

            threading.Thread(target=_run, daemon=True).start()
            return future

    store = JobStore(_GatedProxy(), policy=JobPolicy(
        max_queue=2, max_inflight_per_client=1, item_timeout=60.0),
        metrics=service.metrics_)
    with service._jobs_lock:
        service._jobs = store
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", gate, store
    gate.set()
    server.shutdown()
    server.server_close()
    store.close(wait=True, timeout=10)
    service.close()


def test_http_backpressure_and_unavailable_envelopes(backpressure_endpoint,
                                                     pi_source):
    """429 queue_full / 429 quota_exceeded (X-Client-Id keyed) on the way up,
    503 unavailable once the store is closed — all as structured envelopes."""
    url, gate, store = backpressure_endpoint
    body = {"items": [{"code": pi_source}]}

    status, first = _post_headers(f"{url}/v1/advise/batch", body,
                                  {"X-Client-Id": "alice"})
    assert status == 202 and first["job_id"] == "job-1"

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{url}/v1/advise/batch", body, {"X-Client-Id": "alice"})
    assert excinfo.value.code == 429
    assert _error_body(excinfo)["code"] == "quota_exceeded"

    status, second = _post_headers(f"{url}/v1/advise/batch", body,
                                   {"X-Client-Id": "bob"})
    assert status == 202 and second["job_id"] == "job-2"

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{url}/v1/advise/batch", body, {"X-Client-Id": "carol"})
    assert excinfo.value.code == 429
    assert _error_body(excinfo)["code"] == "queue_full"

    # The rejections are observable at /metrics and /healthz.
    _, metrics = _get(f"{url}/metrics")
    assert metrics["jobs_rejected_total"] == 2
    assert metrics["jobs_rejected_by_reason"] == {"queue_full": 1,
                                                  "quota_exceeded": 1}
    assert metrics["jobs"]["backlog"] == 2
    _, health = _get(f"{url}/healthz")
    assert health["jobs"]["rejected_by_reason"]["quota_exceeded"] == 1

    # Open the gate, drain, close the store: submits now answer 503.
    gate.set()
    import time
    deadline = time.monotonic() + 120
    for job_id in ("job-1", "job-2"):
        job = {"status": ""}
        while job["status"] != "done" and time.monotonic() < deadline:
            time.sleep(0.05)
            _, job = _get(f"{url}/v1/jobs/{job_id}")
        assert job["status"] == "done"

    _, health = _get(f"{url}/healthz")
    assert health["jobs"]["closed"] is False

    # Close just the job tier (what service shutdown does first): further
    # submits are a 503 unavailable, not a 500.
    assert store.close(wait=True, timeout=10) is True
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{url}/v1/advise/batch", body, {"X-Client-Id": "dave"})
    assert excinfo.value.code == 503
    assert _error_body(excinfo)["code"] == "unavailable"
    _, health = _get(f"{url}/healthz")
    assert health["jobs"]["closed"] is True


def test_http_expired_vs_unknown_job(tiny_model, pi_source):
    """A TTL-evicted job answers 410 expired; a never-issued id stays 404."""
    import time

    from repro.serving import JobPolicy

    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               cache_capacity=16,
                               generation=GenerationConfig(max_length=60),
                               job_policy=JobPolicy(ttl_seconds=0.05))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://{host}:{port}"
    try:
        status, job = _post(f"{url}/v1/advise/batch",
                            json.dumps({"items": [{"code": pi_source}]}).encode())
        assert status == 202
        deadline = time.monotonic() + 120
        while job["status"] != "done" and time.monotonic() < deadline:
            time.sleep(0.05)
            _, job = _get(f"{url}/v1/jobs/{job['job_id']}")
        assert job["status"] == "done"
        time.sleep(0.15)

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{url}/v1/jobs/job-1")
        assert excinfo.value.code == 410
        assert _error_body(excinfo)["code"] == "expired"

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{url}/v1/jobs/job-42")
        assert excinfo.value.code == 404
        assert _error_body(excinfo)["code"] == "not_found"
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_healthz_and_metrics_report_job_tier(endpoint):
    """An untouched job tier reports enabled: False (the probes must not
    create the store); metrics always carry the job counters."""
    _, health = _get(f"{endpoint}/healthz")
    assert "jobs" in health
    _, metrics = _get(f"{endpoint}/metrics")
    assert "jobs" in metrics
    assert {"jobs_submitted_total", "jobs_rejected_total",
            "jobs_rejected_by_reason",
            "jobs_dead_letter_total"} <= set(metrics)


# ------------------------------------------------------ robustness satellites


def test_client_id_is_validated_before_use_as_quota_key(endpoint, pi_source):
    """The quota key is adversarial input: an oversized or out-of-charset
    ``X-Client-Id`` is a 400 envelope *before* it touches the quota map or
    the WAL; a sane id still gets its own budget."""
    body = {"items": [{"code": pi_source}]}

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{endpoint}/v1/advise/batch", body,
                      {"X-Client-Id": "x" * 300})
    assert excinfo.value.code == 400
    error = _error_body(excinfo)
    assert error["code"] == "invalid_request"
    assert error["field"] == "X-Client-Id"

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{endpoint}/v1/advise/batch", body,
                      {"X-Client-Id": "spaces are not ok"})
    assert excinfo.value.code == 400
    assert _error_body(excinfo)["field"] == "X-Client-Id"

    # Dots, dashes, colons and @ are all in the allowed charset.
    status, job = _post_headers(f"{endpoint}/v1/advise/batch", body,
                                {"X-Client-Id": "ci-bot.eu:1@host"})
    assert status == 202 and job["job_id"]


def test_backpressure_rejections_carry_retry_after(backpressure_endpoint,
                                                   pi_source):
    """Every backpressure answer tells the client *when* to come back:
    429 quota/queue rejections and the closed-store 503 all carry a
    ``Retry-After`` header (whole seconds, RFC 9110)."""
    url, gate, store = backpressure_endpoint
    body = {"items": [{"code": pi_source}]}

    status, _ = _post_headers(f"{url}/v1/advise/batch", body,
                              {"X-Client-Id": "alice"})
    assert status == 202

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{url}/v1/advise/batch", body, {"X-Client-Id": "alice"})
    assert excinfo.value.code == 429
    assert _error_body(excinfo)["code"] == "quota_exceeded"
    assert excinfo.value.headers["Retry-After"] == "1"

    status, _ = _post_headers(f"{url}/v1/advise/batch", body,
                              {"X-Client-Id": "bob"})
    assert status == 202
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{url}/v1/advise/batch", body, {"X-Client-Id": "carol"})
    assert excinfo.value.code == 429
    assert _error_body(excinfo)["code"] == "queue_full"
    assert excinfo.value.headers["Retry-After"] == "1"

    # Drain and close the store: unavailable hints a longer pause.
    gate.set()
    assert store.close(wait=True, timeout=30) is True
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_headers(f"{url}/v1/advise/batch", body, {"X-Client-Id": "dave"})
    assert excinfo.value.code == 503
    assert _error_body(excinfo)["code"] == "unavailable"
    assert excinfo.value.headers["Retry-After"] == "2"


def test_drain_mode_stops_new_work_and_reports_pending(tiny_model, pi_source):
    """POST /admin/drain flips the worker into drain mode: /healthz answers
    503 with the pending count, new advise/stream/batch work gets a 503
    unavailable with Retry-After, and /metrics stays observable."""
    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               cache_capacity=16,
                               generation=GenerationConfig(max_length=60))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://{host}:{port}"
    try:
        payload = json.dumps({"code": pi_source}).encode()
        status, _ = _post(f"{url}/v1/advise", payload)
        assert status == 200

        status, drain = _post(f"{url}/admin/drain", b"")
        assert status == 200
        assert drain["draining"] is True and drain["pending"] == 0
        status, again = _post(f"{url}/admin/drain", b"")  # idempotent
        assert status == 200 and again["draining"] is True

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{url}/healthz")
        assert excinfo.value.code == 503
        health = json.loads(excinfo.value.read())
        assert health["status"] == "draining"
        assert health["draining"] is True and health["pending"] == 0

        for path in ("/v1/advise", "/v1/advise/stream"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{url}{path}", payload)
            assert excinfo.value.code == 503
            assert _error_body(excinfo)["code"] == "unavailable"
            assert excinfo.value.headers["Retry-After"] == "1"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{url}/v1/advise/batch",
                  json.dumps({"items": [{"code": pi_source}]}).encode())
        assert excinfo.value.code == 503

        status, metrics = _get(f"{url}/metrics")
        assert status == 200 and metrics["draining"] is True
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_probes_race_wal_replay_and_store_close_without_blocking(
        tiny_model, pi_source, tmp_path):
    """Liveness probes must stay cheap no matter what the job tier is doing:
    hammering /healthz + /metrics must never *create* the job store, and
    probes must keep answering promptly while the first submit replays the
    WAL, while the store closes, and while the worker drains."""
    import time

    service = InferenceService(tiny_model, max_batch_size=4, max_wait_ms=5,
                               cache_capacity=16,
                               generation=GenerationConfig(max_length=60),
                               registry_root=str(tmp_path / "root"))
    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://{host}:{port}"

    failures: list[str] = []
    probes = [0]
    stop = threading.Event()
    lock = threading.Lock()

    def probe_loop() -> None:
        while not stop.is_set():
            for path in ("/healthz", "/metrics"):
                started = time.monotonic()
                try:
                    with urllib.request.urlopen(f"{url}{path}",
                                                timeout=5) as response:
                        response.read()
                except urllib.error.HTTPError as exc:
                    exc.read()  # 503 while draining is fine — just answer
                except Exception as exc:  # noqa: BLE001 — a blocked probe
                    with lock:
                        failures.append(
                            f"{path}: {type(exc).__name__}: {exc}")
                    continue
                finally:
                    with lock:
                        probes[0] += 1
                elapsed = time.monotonic() - started
                if elapsed > 5.0:
                    with lock:
                        failures.append(f"{path} blocked {elapsed:.1f}s")

    threads = [threading.Thread(target=probe_loop) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        time.sleep(0.3)
        # Probes alone must not have opened the WAL.
        assert service.job_store() is None

        # First submit replays the WAL under live probe fire.
        status, job = _post(
            f"{url}/v1/advise/batch",
            json.dumps({"items": [{"code": pi_source}]}).encode())
        assert status == 202
        deadline = time.monotonic() + 120
        while job["status"] != "done" and time.monotonic() < deadline:
            time.sleep(0.05)
            _, job = _get(f"{url}/v1/jobs/{job['job_id']}")
        assert job["status"] == "done"
        store = service.job_store()
        assert store is not None

        # Store close and drain mode, still under probe fire.
        assert store.close(wait=True, timeout=30) is True
        status, drained = _post(f"{url}/admin/drain", b"")
        assert status == 200 and drained["draining"] is True
        time.sleep(0.3)
    finally:
        stop.set()
        for thread in threads:
            thread.join(10)
        server.shutdown()
        server.server_close()
        service.close()
    assert not failures, failures
    assert probes[0] > 0
