"""Batched greedy decoding must be exact-match equivalent to sequential.

Two layers of evidence:

* a deterministic **stub model** whose next-token rule depends only on the
  row's own (un-padded) source, step and previous token — this lets the
  property test steer directly into the awkward corners (ragged lengths,
  empty sources, EOS at step 0, sequences that never finish); and
* the **real tiny Transformer**, where equality additionally proves that
  right-padding plus the encoder/cross-attention padding masks do not perturb
  the argmax path.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.generation import greedy_decode, greedy_decode_batch

PAD, SOS, EOS = 0, 1, 2
VOCAB = 17


class StubModel:
    """Deterministic per-row decoder obeying the Seq2SeqTransformer decode API.

    ``decode_step`` computes each row's next token from that row's real
    (non-pad) source tokens, the step index and the previously fed token —
    nothing else — so the per-example and batched paths must agree exactly if
    the batching machinery is correct.
    """

    def __init__(self, vocab_size: int = VOCAB) -> None:
        self.vocab_size = vocab_size

    def encode(self, source_ids: np.ndarray, pad_id: int, *, training: bool = False):
        return source_ids  # decode_step reads src directly; no memory needed

    def start_decoding(self):
        return SimpleNamespace(position=0)

    def decode_step(self, token_ids: np.ndarray, memory, source_ids: np.ndarray,
                    pad_id: int, state) -> np.ndarray:
        batch = source_ids.shape[0]
        logits = np.zeros((batch, self.vocab_size))
        for row in range(batch):
            real = [int(t) for t in source_ids[row] if int(t) != pad_id]
            token = self._next_token(real, state.position, int(token_ids[row, 0]))
            logits[row, token] = 1.0
        state.position += 1
        return logits

    def _next_token(self, real_source: list[int], step: int, previous: int) -> int:
        if step == 0 and len(real_source) % 3 == 0:
            return EOS  # immediate-EOS corner: some rows finish on step one
        mix = len(real_source) * 13 + sum(real_source) * 7 + step * 5 + previous * 3
        return 3 + mix % (self.vocab_size - 3)  # never PAD/SOS/EOS mid-stream


source_lists = st.lists(
    st.lists(st.integers(min_value=3, max_value=VOCAB - 1), min_size=0, max_size=12),
    min_size=0, max_size=9,
)


@settings(max_examples=60, deadline=None)
@given(sources=source_lists, max_length=st.integers(min_value=1, max_value=12))
def test_stub_batch_matches_sequential(sources, max_length):
    model = StubModel()
    expected = [greedy_decode(model, ids, sos_id=SOS, eos_id=EOS, pad_id=PAD,
                              max_length=max_length) for ids in sources]
    batched = greedy_decode_batch(model, sources, sos_id=SOS, eos_id=EOS,
                                  pad_id=PAD, max_length=max_length)
    assert batched == expected


def test_stub_corner_batch():
    """One batch holding every corner at once: empty, immediate-EOS, ragged."""
    model = StubModel()
    sources = [
        [],                      # empty source -> []
        [3, 4, 5],               # len % 3 == 0 -> EOS at step 0 -> []
        [7],
        [8, 9, 10, 11, 12, 13, 14, 15],
        [3, 4, 5, 6],
    ]
    batched = greedy_decode_batch(model, sources, sos_id=SOS, eos_id=EOS,
                                  pad_id=PAD, max_length=10)
    expected = [greedy_decode(model, ids, sos_id=SOS, eos_id=EOS, pad_id=PAD,
                              max_length=10) for ids in sources]
    assert batched == expected
    assert batched[0] == [] and batched[1] == []
    # Unfinished rows are capped at max_length.
    assert all(len(out) <= 10 for out in batched)


def test_empty_batch_and_all_empty_sources():
    model = StubModel()
    assert greedy_decode_batch(model, [], sos_id=SOS, eos_id=EOS, pad_id=PAD) == []
    assert greedy_decode_batch(model, [[], []], sos_id=SOS, eos_id=EOS,
                               pad_id=PAD) == [[], []]
    assert greedy_decode(model, [], sos_id=SOS, eos_id=EOS, pad_id=PAD) == []


def test_beam_search_empty_source_generates_nothing(tiny_model):
    """Beam decoding shares greedy's empty-source contract (no crash)."""
    from repro.model.generation import beam_search_decode

    vocab = tiny_model.encoder.vocab
    assert beam_search_decode(tiny_model.model, [], sos_id=vocab.sos_id,
                              eos_id=vocab.eos_id, pad_id=vocab.pad_id,
                              beam_size=3, max_length=10) == []


# --------------------------------------------------------------- real model


@pytest.fixture(scope="module")
def ragged_sources(small_dataset, pi_source):
    programs = [ex.source_code for ex in small_dataset.splits.test[:5]]
    return programs + [pi_source, "", programs[0]]


def test_real_model_batch_matches_sequential(tiny_model, ragged_sources):
    vocab = tiny_model.encoder.vocab
    encoded = [tiny_model.encoder.encode_source(src) for src in ragged_sources]
    expected = [greedy_decode(tiny_model.model, ids, sos_id=vocab.sos_id,
                              eos_id=vocab.eos_id, pad_id=vocab.pad_id,
                              max_length=60) for ids in encoded]
    batched = greedy_decode_batch(tiny_model.model, encoded, sos_id=vocab.sos_id,
                                  eos_id=vocab.eos_id, pad_id=vocab.pad_id,
                                  max_length=60)
    assert batched == expected


def test_pipeline_batch_predictions_match(tiny_model, ragged_sources):
    """predict_code_batch is per-example identical to predict_code."""
    from repro.model.generation import GenerationConfig

    generation = GenerationConfig(max_length=60)
    batched = tiny_model.predict_code_batch(ragged_sources, generation=generation)
    for source, result in zip(ragged_sources, batched):
        single = tiny_model.predict_code(source, generation=generation)
        assert result.generated_tokens == single.generated_tokens
        assert result.generated_code == single.generated_code
        assert result.suggestions == single.suggestions
