"""Tests for the Table II / Table III report builders."""

import pytest

from repro.evaluation.report import (
    ExamplePrediction,
    evaluate_benchmark,
    evaluate_corpus,
)
from repro.tokenization import tokenize_code


class TestCorpusEvaluation:
    def _prediction(self, pi_source, predicted=None):
        predicted = predicted if predicted is not None else pi_source
        return ExamplePrediction(
            example_id="x",
            predicted_code=predicted,
            reference_code=pi_source,
            predicted_tokens=tokenize_code(predicted),
            reference_tokens=tokenize_code(pi_source),
        )

    def test_perfect_predictions_score_one(self, pi_source):
        result = evaluate_corpus([self._prediction(pi_source)])
        table = result.as_dict()
        assert table["M-F1"] == pytest.approx(1.0)
        assert table["MCC-F1"] == pytest.approx(1.0)
        assert table["BLEU"] == pytest.approx(1.0)
        assert table["Rouge-l"] == pytest.approx(1.0)
        assert table["ACC"] == pytest.approx(1.0)

    def test_imperfect_prediction_lowers_scores(self, pi_source):
        damaged = "\n".join(l for l in pi_source.splitlines() if "MPI_Reduce" not in l)
        result = evaluate_corpus([self._prediction(pi_source, damaged)])
        table = result.as_dict()
        assert table["M-Recall"] < 1.0
        assert table["ACC"] == 0.0
        assert 0.0 < table["BLEU"] < 1.0

    def test_table_rendering_contains_all_rows(self, pi_source):
        result = evaluate_corpus([self._prediction(pi_source)])
        text = result.to_table()
        for row in ("M-F1", "MCC-Precision", "BLEU", "Meteor", "Rouge-l", "ACC"):
            assert row in text

    def test_empty_predictions_raise(self):
        with pytest.raises(ValueError):
            evaluate_corpus([])


class TestBenchmarkEvaluation:
    def test_per_program_rows_and_total(self, pi_source):
        damaged = "\n".join(l for l in pi_source.splitlines() if "MPI_Reduce" not in l)
        result = evaluate_benchmark([
            ("Pi Riemann Sum", pi_source, pi_source),
            ("Damaged", damaged, pi_source),
        ])
        assert len(result.programs) == 2
        assert result.programs[0].f1 == pytest.approx(1.0)
        assert result.programs[1].recall < 1.0
        assert result.total is not None
        # Pooled total sits between the per-program extremes.
        assert result.programs[1].f1 <= result.total.f1 <= result.programs[0].f1

    def test_table_rendering_matches_table3_columns(self, pi_source):
        result = evaluate_benchmark([("Pi Riemann Sum", pi_source, pi_source)])
        text = result.to_table()
        assert "Code" in text and "M-F1" in text and "Total" in text
