"""Tests for the dataset builder (Figure 4 pipeline)."""

from repro.dataset.builder import build_dataset, build_examples, example_from_program
from repro.dataset.filters import FilterConfig
from repro.dataset.removal import count_mpi_calls


class TestExampleCreation:
    def test_example_from_program(self, small_corpus):
        program = small_corpus.mpi_programs()[0]
        example = example_from_program(program)
        assert example is not None
        assert example.target_code == program.code
        assert count_mpi_calls(example.source_code) == 0
        assert example.source_xsbt
        assert example.removed_calls
        assert example.mpi_function_names == tuple(rc.function for rc in example.removed_calls)

    def test_serial_program_yields_no_example(self):
        from repro.corpus.synthesis import CorpusProgram

        program = CorpusProgram(
            program_id="serial", family="serial_program",
            code="int main() {\n    return 0;\n}\n",
            token_count=12, line_count=3, mpi_functions=(), mpi_call_lines=(),
        )
        assert example_from_program(program) is None

    def test_xsbt_matches_stripped_code(self, small_dataset):
        from repro.xsbt import xsbt_for_source

        example = small_dataset.examples[0]
        assert example.source_xsbt == xsbt_for_source(example.source_code)


class TestBuildDataset:
    def test_build_examples_respects_filters(self, small_corpus):
        examples, report = build_examples(small_corpus, FilterConfig(max_tokens=200))
        assert report.dropped_too_long >= 0
        for example in examples:
            assert example.token_count <= 320  # target token count bound is loose

    def test_build_dataset_splits_cover_examples(self, small_dataset):
        splits = small_dataset.splits
        assert len(splits) == len(small_dataset.examples)
        assert len(splits.train) > len(splits.test)

    def test_examples_have_unique_ids(self, small_dataset):
        ids = [e.example_id for e in small_dataset.examples]
        assert len(ids) == len(set(ids))

    def test_every_example_has_ground_truth(self, small_dataset):
        for example in small_dataset.examples:
            assert example.removed_calls
            assert all(rc.line >= 1 for rc in example.removed_calls)

    def test_dataset_contains_common_core_labels(self, small_dataset):
        from repro.mpiknow import MPI_COMMON_CORE

        seen = set()
        for example in small_dataset.examples:
            seen.update(example.mpi_function_names)
        assert set(MPI_COMMON_CORE[:4]).issubset(seen)

    def test_filter_report_drop_fraction_consistent(self, small_dataset, small_corpus):
        report = small_dataset.filter_report
        assert report.total == len(small_corpus.programs)
        assert report.kept <= report.total
