"""Tests for the corpus statistics that back Table Ia, Ib and Figure 3."""

import numpy as np

from repro.corpus.statistics import (
    LENGTH_BUCKETS,
    code_length_distribution,
    common_core_counts,
    files_with_init_and_finalize,
    init_finalize_ratio_histogram,
    is_exponentially_decreasing,
    median_parallel_ratio,
    mpi_function_histogram,
    summarize,
)
from repro.mpiknow import MPI_COMMON_CORE


class TestLengthDistribution:
    def test_buckets_cover_all_programs(self, small_corpus):
        buckets = code_length_distribution(small_corpus)
        assert sum(buckets.values()) == len(small_corpus)

    def test_bucket_labels_match_paper(self, small_corpus):
        buckets = code_length_distribution(small_corpus)
        assert list(buckets.keys()) == [label for label, _, _ in LENGTH_BUCKETS]

    def test_majority_in_11_to_50_lines(self, small_corpus):
        # Table Ia: the 11-50 bucket dominates for <=320 token programs.
        buckets = code_length_distribution(small_corpus)
        assert buckets["11-50"] >= buckets["<= 10"]
        assert buckets["11-50"] >= buckets[">= 100"]


class TestFunctionHistogram:
    def test_counts_are_per_file(self, small_corpus):
        hist = mpi_function_histogram(small_corpus)
        assert hist["MPI_Init"] <= len(small_corpus)
        # Init appears at most once per file even though some files call it once only anyway.
        assert hist["MPI_Init"] == sum(
            1 for p in small_corpus.programs if "MPI_Init" in p.mpi_functions
        )

    def test_histogram_sorted_descending(self, small_corpus):
        values = list(mpi_function_histogram(small_corpus).values())
        assert values == sorted(values, reverse=True)

    def test_common_core_heads_the_distribution(self, small_corpus):
        hist = mpi_function_histogram(small_corpus)
        top_four = list(hist.keys())[:4]
        assert set(top_four) == {"MPI_Init", "MPI_Finalize", "MPI_Comm_rank", "MPI_Comm_size"}

    def test_exponentially_decreasing_shape(self, small_corpus):
        hist = mpi_function_histogram(small_corpus)
        assert is_exponentially_decreasing(hist)

    def test_common_core_counts_cover_all_eight(self, small_corpus):
        counts = common_core_counts(small_corpus)
        assert list(counts.keys()) == list(MPI_COMMON_CORE)


class TestParallelRatio:
    def test_histogram_shape(self, small_corpus):
        counts, edges = init_finalize_ratio_histogram(small_corpus, bins=20)
        assert len(counts) == 20
        assert len(edges) == 21
        assert counts.sum() > 0

    def test_most_programs_have_majority_parallel_lines(self, small_corpus):
        # Figure 3: most programs have more than half their lines between
        # MPI_Init and MPI_Finalize.
        assert median_parallel_ratio(small_corpus) > 0.5

    def test_files_with_init_and_finalize_is_most_of_corpus(self, small_corpus):
        count = files_with_init_and_finalize(small_corpus)
        assert count >= 0.8 * len(small_corpus.mpi_programs())

    def test_empty_corpus_histogram(self):
        from repro.corpus.synthesis import Corpus

        counts, edges = init_finalize_ratio_histogram(Corpus(), bins=10)
        assert counts.sum() == 0
        assert np.isclose(edges[-1], 1.0)


class TestSummary:
    def test_summarize_bundles_everything(self, small_corpus):
        stats = summarize(small_corpus)
        assert stats.total_programs == len(small_corpus)
        assert stats.common_core["MPI_Init"] > 0
        assert stats.ratio_histogram[0].sum() > 0

    def test_is_exponentially_decreasing_edge_cases(self):
        assert is_exponentially_decreasing({})
        assert is_exponentially_decreasing({"a": 5})
        assert is_exponentially_decreasing({"a": 5, "b": 3, "c": 1})
        assert not is_exponentially_decreasing({"a": 1, "b": 2, "c": 3, "d": 4, "e": 5})
