"""Tests for the 11 numerical benchmark programs (Table III evaluation set)."""

import pytest

from repro.benchprograms import BENCHMARK_PROGRAMS, check_for, program_by_name, program_names
from repro.clang.lexer import code_token_texts
from repro.clang.parser import parses_cleanly
from repro.dataset.removal import count_mpi_calls, remove_mpi_calls
from repro.mpisim import validate_program


class TestCatalogue:
    def test_exactly_eleven_programs(self):
        assert len(BENCHMARK_PROGRAMS) == 11

    def test_names_match_table_3(self):
        assert program_names() == [
            "Array Average",
            "Vector Dot Product",
            "Min-Max",
            "Matrix-Vector Multiplication",
            "Sum (Reduce & Gather)",
            "Merge Sort",
            "Pi Monte-Carlo",
            "Pi Riemann Sum",
            "Factorial",
            "Fibonacci",
            "Trapezoidal Rule (Integration)",
        ]

    def test_lookup_by_name(self):
        assert program_by_name("Merge Sort").name == "Merge Sort"
        with pytest.raises(KeyError):
            program_by_name("Bubble Sort")

    def test_every_program_has_reference_check(self):
        for program in BENCHMARK_PROGRAMS:
            assert check_for(program.name).check is not None


class TestInclusionCriteria:
    def test_all_programs_parse_cleanly(self):
        for program in BENCHMARK_PROGRAMS:
            assert parses_cleanly(program.source), program.name

    def test_all_programs_are_short(self):
        # The paper's exclusion limit is ~320 tokens (~50 lines); the
        # matrix-vector program is the longest and stays within ~50 lines.
        for program in BENCHMARK_PROGRAMS:
            lines = [l for l in program.source.splitlines() if l.strip()]
            assert len(lines) <= 50, program.name
            assert len(code_token_texts(program.source)) <= 400, program.name

    def test_all_programs_use_domain_decomposition_core(self):
        for program in BENCHMARK_PROGRAMS:
            assert "MPI_Init" in program.source
            assert "MPI_Finalize" in program.source
            assert "MPI_Comm_rank" in program.source
            assert count_mpi_calls(program.source) >= 5

    def test_programs_are_standardised(self):
        from repro.clang.codegen import standardize

        for program in BENCHMARK_PROGRAMS:
            assert standardize(program.source) == program.source, program.name


class TestExecution:
    @pytest.mark.parametrize("program", BENCHMARK_PROGRAMS, ids=lambda p: p.name)
    def test_program_runs_and_passes_reference_check(self, program):
        verdict = validate_program(program.source, num_ranks=program.num_ranks,
                                   check=check_for(program.name).check)
        assert verdict.valid, f"{program.name}: {verdict.message}"

    def test_stripped_programs_lose_all_mpi(self):
        for program in BENCHMARK_PROGRAMS:
            stripped = remove_mpi_calls(program.source).stripped_code
            assert count_mpi_calls(stripped) == 0
