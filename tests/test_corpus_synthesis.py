"""Tests for corpus synthesis (standardisation + inclusion filtering)."""

from repro.clang.lexer import code_token_texts
from repro.clang.parser import parses_cleanly
from repro.corpus import MiningConfig, build_corpus
from repro.corpus.families import FAMILIES, MPI_FAMILIES, family_by_name, family_names
from repro.corpus.templates import random_style
from repro.utils.rng import make_rng


class TestFamilies:
    def test_registry_has_many_families(self):
        assert len(FAMILIES) >= 30
        assert len(MPI_FAMILIES) >= 29

    def test_family_lookup(self):
        family = family_by_name("pi_riemann")
        assert family.category == "reduction"

    def test_family_lookup_unknown_raises(self):
        import pytest

        with pytest.raises(KeyError):
            family_by_name("nonexistent_family")

    def test_family_names_mpi_only_excludes_serial(self):
        assert "serial_program" not in family_names(mpi_only=True)
        assert "serial_program" in family_names()

    def test_every_mpi_template_generates_parseable_code(self):
        rng = make_rng(123)
        for family in MPI_FAMILIES:
            for trial in range(2):
                style = random_style(rng)
                source = family.template(rng, style)
                assert parses_cleanly(source), f"{family.name} trial {trial} does not parse"
                assert "MPI_Init" in source
                assert "MPI_Finalize" in source

    def test_templates_produce_lexically_diverse_programs(self):
        rng = make_rng(7)
        family = family_by_name("pi_riemann")
        sources = {family.template(rng, random_style(rng)) for _ in range(8)}
        assert len(sources) > 1


class TestCorpusBuild:
    def test_build_reports_filtering(self, small_corpus):
        report = small_corpus.report
        assert report.programs_kept == len(small_corpus)
        assert report.files_extracted >= report.programs_kept
        assert report.files_parse_failed >= 0

    def test_programs_are_standardised(self, small_corpus):
        from repro.clang.codegen import standardize

        for program in small_corpus.programs[:10]:
            assert standardize(program.code) == program.code

    def test_programs_parse_cleanly(self, small_corpus):
        for program in small_corpus.programs[:20]:
            assert parses_cleanly(program.code)

    def test_token_counts_recorded(self, small_corpus):
        for program in small_corpus.programs[:20]:
            assert program.token_count == len(code_token_texts(program.code))

    def test_mpi_functions_extracted(self, small_corpus):
        mpi_programs = small_corpus.mpi_programs()
        assert mpi_programs
        for program in mpi_programs[:20]:
            assert "MPI_Init" in program.mpi_functions

    def test_init_finalize_ratio_in_unit_interval(self, small_corpus):
        for program in small_corpus.programs:
            if program.init_finalize_ratio is not None:
                assert 0.0 <= program.init_finalize_ratio <= 1.0

    def test_by_family_subsets(self, small_corpus):
        for family_name in ("pi_riemann", "ring_pass"):
            subset = small_corpus.by_family(family_name)
            for program in subset:
                assert program.family == family_name

    def test_deterministic_corpus(self):
        config = MiningConfig(num_repositories=8, seed=77)
        a = build_corpus(config)
        b = build_corpus(config)
        assert [p.code for p in a.programs] == [p.code for p in b.programs]
