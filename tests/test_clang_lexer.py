"""Tests for the C lexer."""

import pytest

from repro.clang.errors import LexError
from repro.clang.lexer import Lexer, code_token_texts, tokenize
from repro.clang.tokens import Token, TokenKind, TokenStream


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo; return bar;")
        kinds = [(t.kind, t.text) for t in tokens if t.kind is not TokenKind.EOF]
        assert (TokenKind.KEYWORD, "int") in kinds
        assert (TokenKind.IDENTIFIER, "foo") in kinds
        assert (TokenKind.KEYWORD, "return") in kinds
        assert (TokenKind.IDENTIFIER, "bar") in kinds

    def test_numbers(self):
        tokens = [t.text for t in tokenize("42 3.14 1e-5 0x1F 100L 2.5f")
                  if t.kind is TokenKind.NUMBER]
        assert tokens == ["42", "3.14", "1e-5", "0x1F", "100L", "2.5f"]

    def test_string_literal_kept_whole(self):
        tokens = [t for t in tokenize('printf("a b c %d\\n", x);')
                  if t.kind is TokenKind.STRING]
        assert len(tokens) == 1
        assert tokens[0].text == '"a b c %d\\n"'

    def test_char_literal(self):
        tokens = [t for t in tokenize("char c = 'x';") if t.kind is TokenKind.CHAR]
        assert tokens[0].text == "'x'"

    def test_multichar_punctuators_maximal_munch(self):
        texts = [t.text for t in tokenize("a += b >> 2; c && d; e->f;")
                 if t.kind is TokenKind.PUNCT]
        assert "+=" in texts
        assert ">>" in texts
        assert "&&" in texts
        assert "->" in texts

    def test_line_and_column_tracking(self):
        tokens = tokenize("int a;\nint b;")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2
        assert b_token.column > 1


class TestCommentsAndDirectives:
    def test_line_comment(self):
        tokens = tokenize("int a; // a counter\nint b;")
        comments = [t for t in tokens if t.kind is TokenKind.COMMENT]
        assert len(comments) == 1
        assert "a counter" in comments[0].text

    def test_block_comment(self):
        tokens = tokenize("/* multi\n line */ int a;")
        comments = [t for t in tokens if t.kind is TokenKind.COMMENT]
        assert len(comments) == 1
        assert "multi" in comments[0].text

    def test_comments_can_be_dropped(self):
        tokens = tokenize("int a; /* note */", keep_comments=False)
        assert all(t.kind is not TokenKind.COMMENT for t in tokens)

    def test_include_directive(self):
        tokens = tokenize("#include <mpi.h>\nint main() { return 0; }")
        directives = [t for t in tokens if t.kind is TokenKind.DIRECTIVE]
        assert directives[0].text == "#include <mpi.h>"

    def test_define_directive_with_continuation(self):
        source = "#define BIG \\\n  42\nint a;"
        directives = [t for t in tokenize(source) if t.kind is TokenKind.DIRECTIVE]
        assert len(directives) == 1
        assert "42" in directives[0].text


class TestErrorTolerance:
    def test_unknown_character_produces_error_token(self):
        tokens = tokenize("int a = 1 @ 2;")
        assert any(t.kind is TokenKind.ERROR for t in tokens)

    def test_strict_mode_raises(self):
        with pytest.raises(LexError):
            Lexer("int a @ b;", strict=True).tokenize()

    def test_unterminated_string_does_not_crash(self):
        tokens = tokenize('printf("unterminated')
        assert tokens[-1].kind is TokenKind.EOF

    def test_unterminated_block_comment_strict(self):
        with pytest.raises(LexError):
            Lexer("/* never closed", strict=True).tokenize()


class TestTokenStream:
    def test_stream_filters_non_code_tokens(self):
        stream = Lexer("#include <mpi.h>\nint a; // comment\n").stream()
        kinds = {t.kind for t in stream.tokens}
        assert TokenKind.DIRECTIVE not in kinds
        assert TokenKind.COMMENT not in kinds
        assert TokenKind.NEWLINE not in kinds

    def test_peek_and_next(self):
        stream = TokenStream([
            Token(TokenKind.IDENTIFIER, "a"),
            Token(TokenKind.PUNCT, ";"),
            Token(TokenKind.EOF, ""),
        ])
        assert stream.peek().text == "a"
        assert stream.peek(1).text == ";"
        assert stream.next().text == "a"
        assert stream.peek().text == ";"

    def test_mark_reset_commit(self):
        stream = Lexer("a b c d").stream()
        stream.mark()
        stream.next()
        stream.next()
        stream.reset()
        assert stream.peek().text == "a"
        stream.mark()
        stream.next()
        stream.commit()
        assert stream.peek().text == "b"

    def test_peek_past_end_returns_eof(self):
        stream = Lexer("a").stream()
        assert stream.peek(10).kind is TokenKind.EOF


class TestCodeTokenTexts:
    def test_counts_code_tokens_only(self, pi_source):
        tokens = code_token_texts(pi_source)
        assert 100 < len(tokens) < 320
        assert "#include <stdio.h>" not in tokens

    def test_empty_source(self):
        assert code_token_texts("") == []
