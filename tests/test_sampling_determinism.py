"""Seeded-sampling determinism differentials.

The ISSUE-4 contract for :class:`SampleStrategy`: a seed fully determines
the generation.  Evidence, mirroring the greedy/beam differential harness:

* **sequential ≡ batched** — per-row RNG streams depend only on the seed
  (never on batch composition), so ``sample_decode_batch`` is exact-match
  identical to per-source ``sample_decode`` (property-tested on the
  history-dependent KV-cache stub, then on the real tiny Transformer);
* **tape ≡ inference fast path** — at float64 the no-tape kernels are
  bitwise identical to the tape path, and token selection runs in float64
  off the logits, so the same seed yields the same tokens under
  ``tape_mode()`` and ``inference_mode(dtype=np.float64)``;
* **different seeds diverge** — the seed is live, not decorative.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.autograd import inference_mode, tape_mode
from repro.model.decoding import (
    SampleStrategy,
    sample_decode,
    sample_decode_batch,
)
from repro.model.generation import greedy_decode_batch

from test_decoding_differential import (
    DECODE,
    EOS,
    HistoryStubModel,
    PAD,
    SOS,
    VOCAB,
    ragged_batches,
)

sampling_params = st.fixed_dictionaries({
    "temperature": st.sampled_from([0.5, 1.0, 1.7]),
    "top_k": st.sampled_from([0, 1, 3, VOCAB]),
    "top_p": st.sampled_from([0.3, 0.9, 1.0]),
    "seed": st.integers(min_value=0, max_value=2**31),
})


# ----------------------------------------------------- stub-model properties


@settings(max_examples=60, deadline=None)
@given(sources=ragged_batches(), params=sampling_params)
def test_batched_sampling_equals_sequential_on_stub(sources, params):
    batched = sample_decode_batch(HistoryStubModel(), sources, **DECODE,
                                  max_length=10, **params)
    sequential = [sample_decode(HistoryStubModel(), source, **DECODE,
                                max_length=10, **params)
                  for source in sources]
    assert batched == sequential


@settings(max_examples=30, deadline=None)
@given(sources=ragged_batches(), seed=st.integers(min_value=0, max_value=999))
def test_top_k_one_is_greedy(sources, seed):
    """top_k=1 collapses sampling onto the argmax path (ties included:
    both rank by ascending token id)."""
    sampled = sample_decode_batch(HistoryStubModel(), sources, **DECODE,
                                  max_length=10, top_k=1, seed=seed)
    greedy = greedy_decode_batch(HistoryStubModel(), sources, **DECODE,
                                 max_length=10)
    assert sampled == greedy


def test_same_seed_reproduces_and_different_seeds_diverge():
    sources = [[3, 4, 5, 6], [7, 8, 9], [10, 11, 3, 4, 5]]
    kwargs = dict(**DECODE, max_length=16)
    model = lambda: HistoryStubModel(never_eos=True)  # noqa: E731
    first = sample_decode_batch(model(), sources, **kwargs, seed=123)
    again = sample_decode_batch(model(), sources, **kwargs, seed=123)
    other = sample_decode_batch(model(), sources, **kwargs, seed=124)
    assert first == again
    assert first != other


def test_on_token_streams_exactly_the_emitted_tokens():
    source = [3, 4, 5, 6]
    streamed: list[int] = []
    out = sample_decode(HistoryStubModel(never_eos=True), source, **DECODE,
                        max_length=8, seed=5, on_token=streamed.append)
    assert streamed == out and len(out) == 8

    batch_streamed: list[tuple[int, int]] = []
    outs = sample_decode_batch(
        HistoryStubModel(never_eos=True), [source, [7, 8]], **DECODE,
        max_length=4, seed=5,
        on_token=lambda index, token: batch_streamed.append((index, token)))
    for index, ids in enumerate(outs):
        assert [t for i, t in batch_streamed if i == index] == ids


# ------------------------------------------------------- real-model evidence


@pytest.fixture(scope="module")
def sample_setup(tiny_model, small_dataset):
    sources = [ex.source_code for ex in small_dataset.splits.test[:3]]
    encoded = [tiny_model._encode_for_inference(source, None)
               for source in sources]
    vocab = tiny_model.encoder.vocab
    ids = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id, pad_id=vocab.pad_id)
    return tiny_model.model, encoded, ids


def test_real_model_batched_sampling_equals_sequential(sample_setup):
    model, encoded, ids = sample_setup
    params = dict(temperature=0.8, top_k=8, seed=42, max_length=24)
    batched = sample_decode_batch(model, encoded, **ids, **params)
    sequential = [sample_decode(model, source, **ids, **params)
                  for source in encoded]
    assert batched == sequential
    assert any(batched)  # the differential must exercise actual tokens


def test_real_model_same_seed_bitwise_across_tape_and_inference(sample_setup):
    """tape_mode vs inference_mode(float64): bitwise-equal logits feed a
    float64 sampler with the same RNG stream, so the tokens are identical."""
    model, encoded, ids = sample_setup
    params = dict(temperature=1.3, top_p=0.95, seed=7, max_length=16)
    with tape_mode():
        reference = sample_decode_batch(model, encoded, **ids, **params)
    with inference_mode(dtype=np.float64):
        fast = sample_decode_batch(model, encoded, **ids, **params)
    assert fast == reference
    # Default (float32) inference runs the same seed deterministically too.
    assert sample_decode_batch(model, encoded, **ids, **params) == \
        sample_decode_batch(model, encoded, **ids, **params)


def test_real_model_different_seeds_diverge(sample_setup):
    model, encoded, ids = sample_setup
    outs = {seed: sample_decode_batch(model, encoded, **ids, temperature=1.5,
                                      seed=seed, max_length=24)
            for seed in range(4)}
    assert len({tuple(map(tuple, out)) for out in outs.values()}) > 1


def test_strategy_decode_batch_matches_functions(sample_setup):
    """SampleStrategy is a faithful wrapper over the sampling decoders."""
    model, encoded, ids = sample_setup
    strategy = SampleStrategy(temperature=0.8, top_k=8, seed=42)
    assert strategy.decode_batch(model, encoded, **ids, max_length=24) == \
        sample_decode_batch(model, encoded, **ids, temperature=0.8, top_k=8,
                            seed=42, max_length=24)
