"""Serving demo: concurrent clients, micro-batching, caching, live metrics.

Trains a small MPI-RICAL model, stands up an :class:`InferenceService`, and
fires three waves of traffic at it:

1. a **cold burst** of concurrent distinct programs — watch the micro-batcher
   coalesce them into shared decodes (batch-size histogram > 1);
2. a **warm replay** of the same programs — every request is a cache hit and
   returns in microseconds;
3. a **reformatted replay** — cosmetically edited buffers (extra whitespace,
   comments) still hit, because the cache keys on the canonical xSBT + token
   form rather than the raw text;
4. a **beam wave** — the same programs re-advised with ``beam_size=4``: beam
   requests miss the greedy cache entries (the key includes the decoding
   strategy), run through the batched beam decoder in config-homogeneous
   micro-batches, and show up separately in ``batches_by_config``;
5. a **sampling wave** — the v1 contract in action: ``AdviseRequest`` with a
   ``SampleStrategy`` (temperature/top-k with an explicit seed).  The same
   seed replays from cache; a different seed is a different cache identity;
6. a **streaming client** — ``InferenceService.advise_stream`` yields token
   chunks as the model decodes, then the final ``AdviseResponse`` (exactly
   what ``POST /v1/advise/stream`` sends as NDJSON lines);
7. a **model lifecycle wave** — a second checkpoint is saved (a "retrained"
   revision), registered in the :class:`repro.registry.ModelRegistry`, and
   the ``default`` alias is hot-swapped onto it while requests are in
   flight: every request drains on the revision it resolved to, nothing is
   dropped, and the old revision's cache entries can never answer post-swap
   traffic (the cache key embeds ``name@revision``).  An async batch job is
   then submitted and polled to completion — exactly what
   ``POST /v1/advise/batch`` + ``GET /v1/jobs/{id}`` do over HTTP;
8. a **durable-jobs wave** — a second service opens its job store over a
   registry root, so submissions land in an append-only WAL
   (``<root>/jobs/jobs.wal``).  The store is torn down mid-run (the stand-in
   for a SIGKILL) and reopened over the same WAL: the acknowledged job
   resumes idempotently — already-recorded items are restored, the rest are
   re-enqueued and answered from the advice cache — and reaches ``done``
   with every item resolved exactly once and no recycled job ids.

Run with:  PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.api import AdviseRequest
from repro.corpus import MiningConfig, build_corpus
from repro.dataset import build_dataset
from repro.model.config import tiny_config
from repro.model.decoding import SampleStrategy
from repro.model.generation import GenerationConfig
from repro.mpirical import MPIRical
from repro.registry import ModelRegistry
from repro.serving import InferenceService


def train_demo_model() -> tuple[MPIRical, list[str]]:
    print("mining corpus + training a small demo model ...")
    corpus = build_corpus(MiningConfig(num_repositories=40, seed=7))
    dataset = build_dataset(corpus)
    config = tiny_config()
    config.training.max_steps_per_epoch = 12
    model = MPIRical.fit(dataset.splits.train[:48], dataset.splits.validation[:8],
                         config)
    programs = [ex.source_code for ex in dataset.splits.test[:8]]
    return model, programs


def main() -> None:
    model, programs = train_demo_model()
    generation = GenerationConfig(max_length=80)
    registry = ModelRegistry(model, name="advisor-v1")

    with InferenceService(registry, max_batch_size=8, max_wait_ms=10,
                          num_workers=2, cache_capacity=128,
                          generation=generation) as service:
        print(f"\n--- wave 1: cold burst of {len(programs)} concurrent programs")
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(programs)) as pool:
            served = list(pool.map(service.advise, programs))
        print(f"    {len(served)} responses in {time.perf_counter() - start:.2f}s; "
              f"sample advice: {served[0].session.summary()!r}")

        print("\n--- wave 2: warm replay (identical buffers)")
        start = time.perf_counter()
        replayed = [service.advise(program) for program in programs]
        print(f"    all cached: {all(r.cached for r in replayed)}; "
              f"replay took {time.perf_counter() - start:.4f}s")

        print("\n--- wave 3: reformatted replay (whitespace + comments)")
        edited = [f"// reviewed, looks good\n{program}\n" for program in programs]
        reformatted = [service.advise(buffer) for buffer in edited]
        print(f"    all cached despite edits: {all(r.cached for r in reformatted)}")

        print("\n--- wave 4: beam burst (beam_size=4) over the same programs")
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(programs)) as pool:
            beamed = list(pool.map(
                lambda p: service.advise(p, beam_size=4, length_penalty=0.6),
                programs))
        print(f"    {len(beamed)} beam responses in "
              f"{time.perf_counter() - start:.2f}s; greedy cache entries "
              f"did not answer them: {not any(r.cached for r in beamed)}")
        replay = service.advise(programs[0], beam_size=4, length_penalty=0.6)
        print(f"    identical beam request replays from cache: {replay.cached}")

        print("\n--- wave 5: sampling wave (SampleStrategy, explicit seeds)")
        strategy = SampleStrategy(temperature=0.8, top_k=16, seed=7)
        requests = [AdviseRequest(code=program, strategy=strategy)
                    for program in programs]
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            sampled = list(pool.map(service.advise_request, requests))
        print(f"    {len(sampled)} sampled responses in "
              f"{time.perf_counter() - start:.2f}s "
              f"(strategy {strategy.canonical()!r})")
        replay = service.advise_request(requests[0])
        reseeded = service.advise_request(AdviseRequest(
            code=programs[0], strategy=strategy.with_seed(8)))
        print(f"    same seed replays from cache: {replay.cached}; "
              f"different seed is a fresh decode: {not reseeded.cached}")

        print("\n--- wave 6: streaming client (token chunks, then the result)")
        stream_request = AdviseRequest(
            code="int main(int argc, char **argv) {\n"
                 "    int streamed = 1;\n    return streamed;\n}\n")
        chunks = []
        for chunk in service.advise_stream(stream_request):
            if chunk["type"] == "token":
                chunks.append(chunk["token"])
            else:
                final = chunk["response"]
        print(f"    {len(chunks)} token chunks streamed before the final "
              f"result; first tokens: {chunks[:8]}")
        print(f"    final strategy={final['strategy']['name']} "
              f"cached={final['cached']}")

        print("\n--- wave 7: model lifecycle — save, register, hot-swap, batch job")
        workdir = Path(tempfile.mkdtemp(prefix="serving-demo-"))
        # "Retrain": clone the model through a checkpoint, nudge its weights,
        # and save the new revision — a stand-in for a real training run.
        retrained = MPIRical.load(model.save(workdir / "base"))
        first = retrained.model.parameters()[0]
        first.data[...] = first.data + 0.05
        first.mark_updated()
        checkpoint = retrained.save(workdir / "advisor-v2")
        entry = registry.register("advisor-v2", checkpoint)
        print(f"    saved + registered advisor-v2 "
              f"(revision {entry.revision}, lazy-loaded from {checkpoint})")

        with ThreadPoolExecutor(max_workers=len(programs)) as pool:
            inflight = [pool.submit(service.advise_request,
                                    AdviseRequest(code=p, model="default"))
                        for p in programs]
            previous, current = registry.swap("advisor-v2")
            drained = [f.result() for f in inflight]
        identities = sorted({r.model for r in drained})
        print(f"    hot-swapped {previous} -> {current} under traffic; "
              f"{len(drained)}/{len(programs)} in-flight requests drained "
              f"on {identities}")
        fresh = service.advise_request(
            AdviseRequest(code=programs[0], model="default"))
        print(f"    post-swap request served by {fresh.model}; "
              f"stale pre-swap cache hit: "
              f"{fresh.cache_key in {r.cache_key for r in served}}")

        job = service.jobs.submit(
            [AdviseRequest(code=p) for p in programs[:4]])
        print(f"    batch job {job.job_id} submitted "
              f"({job.to_dict()['total']} items); polling ...")
        while not job.wait(timeout=0.2):
            body = job.to_dict()
            print(f"      {body['status']}: {body['completed']}/{body['total']}")
        body = job.to_dict()
        ok = sum(1 for item in body["results"] if item["status"] == "ok")
        print(f"    job {body['job_id']} done: {ok}/{body['total']} items ok")

        print("\n--- /metrics snapshot (note batches_by_config, "
              "requests_by_model, registry)")
        print(json.dumps(service.metrics(), indent=2))

    print("\n--- wave 8: durable jobs — WAL, simulated crash, idempotent resume")
    registry_root = workdir / "durable"
    crashed = InferenceService(model, max_batch_size=8, max_wait_ms=10,
                               num_workers=2, cache_capacity=128,
                               generation=generation,
                               registry_root=registry_root)
    job = crashed.jobs.submit([AdviseRequest(code=p) for p in programs])
    print(f"    job {job.job_id} ({job.to_dict()['total']} items) fsynced to "
          f"{registry_root / 'jobs' / 'jobs.wal'}")
    # Tear the store down mid-run — the stand-in for a SIGKILL.  The bounded
    # close abandons whatever the worker has not recorded; the WAL is all
    # that survives into the next service.
    crashed.jobs.close(wait=True, timeout=0.05)
    interrupted = job.to_dict()
    print(f"    'crashed' mid-run at {interrupted['completed']}/"
          f"{interrupted['total']} items recorded")
    crashed.close()

    with InferenceService(model, max_batch_size=8, max_wait_ms=10,
                          num_workers=2, cache_capacity=128,
                          generation=generation,
                          registry_root=registry_root) as restarted:
        snapshot = restarted.jobs.snapshot()
        resumed = restarted.jobs.get(job.job_id)
        print(f"    reopened the WAL: {snapshot['restored_items']} item(s) "
              f"restored, {snapshot['resumed_jobs']} job(s) re-enqueued")
        assert resumed.wait(timeout=120)
        body = resumed.to_dict()
        ok = sum(1 for item in body["results"] if item["status"] == "ok")
        print(f"    job {body['job_id']} resumed to '{body['status']}': "
              f"{ok}/{body['total']} items ok, each resolved exactly once")
        next_job = restarted.jobs.submit([AdviseRequest(code=programs[0])])
        print(f"    ids never recycle: the next submission is {next_job.job_id}")
        assert next_job.wait(timeout=120)


if __name__ == "__main__":
    main()
