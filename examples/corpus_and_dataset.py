"""Explore MPICodeCorpus: mining filters, statistics (Table Ia/Ib, Figure 3)
and the Removed-Locations dataset transformation (Figure 4).

Run with:  python examples/corpus_and_dataset.py [--repos N]
"""

from __future__ import annotations

import argparse

from repro.corpus import MiningConfig, build_corpus, summarize
from repro.dataset import FilterConfig, build_dataset
from repro.utils.textio import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repos", type=int, default=80)
    args = parser.parse_args()

    corpus = build_corpus(MiningConfig(num_repositories=args.repos, seed=23))
    report = corpus.report
    print("=== Mining / inclusion report ===")
    print(f"repositories generated : {report.repositories_total}")
    print(f"repositories MPI-related: {report.repositories_mpi}")
    print(f"C programs extracted    : {report.files_extracted}")
    print(f"dropped (parse failure) : {report.files_parse_failed}")
    print(f"dropped (no main)       : {report.files_without_main}")
    print(f"programs kept           : {report.programs_kept}")

    stats = summarize(corpus)
    print("\n=== Table Ia — code lengths ===")
    print(format_table(["# Line", "Amount"],
                       [[k, v] for k, v in stats.length_buckets.items()]))

    print("\n=== Table Ib — MPI Common Core (per-file counts) ===")
    print(format_table(["Function", "Amount"],
                       [[k, v] for k, v in stats.common_core.items()]))

    print("\n=== Figure 3 — Init-Finalize span ratio ===")
    counts, edges = stats.ratio_histogram
    print(format_table(["Ratio bin", "Frequency"],
                       [[f"{edges[i]:.2f}-{edges[i+1]:.2f}", int(c)]
                        for i, c in enumerate(counts)]))
    print(f"files with both MPI_Init and MPI_Finalize: {stats.files_with_init_and_finalize}")

    print("\n=== Figure 4 — dataset creation ===")
    dataset = build_dataset(corpus, FilterConfig())
    print(f"examples: {len(dataset.examples)}  "
          f"(dropped too long: {dataset.filter_report.dropped_too_long}, "
          f"no MPI: {dataset.filter_report.dropped_no_mpi})")
    print(f"splits: {dataset.splits.sizes()}")

    example = dataset.examples[0]
    print("\n--- one example ---")
    print("label (original MPI program):")
    print(example.target_code)
    print("input (MPI calls removed):")
    print(example.source_code)
    print("X-SBT (first 40 tags):")
    print(" ".join(example.source_xsbt.split()[:40]) + " ...")
    print("ground truth (function, line):")
    for removed in example.removed_calls:
        print(f"  {removed.function} @ line {removed.line}")


if __name__ == "__main__":
    main()
