"""Quickstart: build a corpus, train MPI-RICAL, and ask it for MPI suggestions.

Run with:  python examples/quickstart.py [--repos N] [--epochs N]

This is a scaled-down end-to-end pass of the paper's Figure 1a workflow:
mine (synthesise) MPICodeCorpus, build the Removed-Locations dataset, fine-tune
the Transformer on the translation task, evaluate on the held-out split, and
advise on a new MPI-free program.
"""

from __future__ import annotations

import argparse

from repro.corpus import MiningConfig, build_corpus, summarize
from repro.dataset import FilterConfig, build_dataset
from repro.dataset.removal import remove_mpi_calls
from repro.model.config import ExperimentConfig, ModelConfig, TrainingConfig
from repro.mpirical import MPIAssistant, MPIRical


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repos", type=int, default=40,
                        help="number of synthetic repositories to mine")
    parser.add_argument("--epochs", type=int, default=4,
                        help="fine-tuning epochs (the paper uses 5)")
    parser.add_argument("--eval-limit", type=int, default=10,
                        help="test examples to decode for the evaluation table")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("=== 1. MPICodeCorpus (synthetic mining) ===")
    corpus = build_corpus(MiningConfig(num_repositories=args.repos, seed=17))
    stats = summarize(corpus)
    print(f"programs kept: {len(corpus)}  (report: {corpus.report})")
    print(f"code-length buckets: {stats.length_buckets}")
    print(f"common core counts:  {stats.common_core}")

    print("\n=== 2. Dataset (Removed-Locations) ===")
    dataset = build_dataset(corpus, FilterConfig(max_tokens=240))
    print(f"examples: {len(dataset.examples)}  splits: {dataset.splits.sizes()}")

    print("\n=== 3. Fine-tuning the Transformer ===")
    config = ExperimentConfig(
        model=ModelConfig(d_model=64, num_heads=4, num_encoder_layers=2,
                          num_decoder_layers=2, ffn_dim=128, dropout=0.1),
        training=TrainingConfig(batch_size=8, epochs=args.epochs, learning_rate=2.5e-3,
                                warmup_steps=20, label_smoothing=0.05),
        max_source_tokens=260, max_xsbt_tokens=80, max_target_tokens=300,
    )
    model = MPIRical.fit(dataset.splits.train, dataset.splits.validation, config,
                         verbose=True)

    print("\n=== 4. Table II style evaluation on the test split ===")
    evaluation = model.evaluate(dataset.splits.test, limit=args.eval_limit)
    print(evaluation.to_table())

    print("\n=== 5. Advising on a new MPI-free program ===")
    target = dataset.splits.test[0].target_code
    stripped = remove_mpi_calls(target).stripped_code
    assistant = MPIAssistant(model)
    session = assistant.advise(stripped)
    print("input program (MPI removed):")
    print(stripped)
    print("suggestions:")
    print(session.summary())


if __name__ == "__main__":
    main()
