"""Reproduce the Table III workflow on the 11 numerical benchmark programs.

Run with:  python examples/numerical_benchmark_eval.py [--use-model]

By default the example exercises the evaluation plumbing with the *oracle*
reconstruction (ground-truth calls re-applied) and the rule-based baseline —
both are instant.  Pass ``--use-model`` to also train a small MPI-RICAL model
and score its predictions (several minutes on CPU).

Every reconstructed program is additionally validated by running it on the
simulated MPI runtime and checking the numerical result — the reproduction's
substitute for the paper's "compile and run" validity check.
"""

from __future__ import annotations

import argparse

from repro.benchprograms import BENCHMARK_PROGRAMS, check_for
from repro.dataset.removal import remove_mpi_calls
from repro.evaluation.report import evaluate_benchmark
from repro.mpirical import RuleBasedBaseline
from repro.mpirical.suggestions import apply_suggestions, extract_suggestions
from repro.mpisim import validate_program


def evaluate_policy(name: str, predict) -> None:
    """Score a prediction policy over all 11 programs and print Table III rows."""
    rows = []
    validity = []
    for program in BENCHMARK_PROGRAMS:
        stripped = remove_mpi_calls(program.source).stripped_code
        predicted = predict(stripped, program)
        rows.append((program.name, predicted, program.source))
        verdict = validate_program(predicted, num_ranks=program.num_ranks,
                                   check=check_for(program.name).check, timeout=20.0)
        validity.append((program.name, verdict.valid))
    table = evaluate_benchmark(rows)
    print(f"\n=== {name} ===")
    print(table.to_table())
    print("simulated compile-and-run validity:")
    for program_name, valid in validity:
        print(f"  {program_name}: {'OK' if valid else 'FAILED'}")


def oracle_predict(stripped: str, program) -> str:
    """Re-apply the ground-truth MPI calls (upper bound for the metrics)."""
    suggestions = extract_suggestions(stripped, program.source)
    return apply_suggestions(stripped, suggestions)


def baseline_predict(stripped: str, _program) -> str:
    return RuleBasedBaseline().predict_code(stripped)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--use-model", action="store_true",
                        help="also train a small MPI-RICAL model and score it")
    args = parser.parse_args()

    evaluate_policy("Oracle reconstruction (upper bound)", oracle_predict)
    evaluate_policy("Rule-based baseline", baseline_predict)

    if args.use_model:
        from repro.corpus import MiningConfig, build_corpus
        from repro.dataset import FilterConfig, build_dataset
        from repro.model.config import small_config
        from repro.mpirical import MPIRical

        print("\ntraining a small MPI-RICAL model (this takes several minutes)...")
        corpus = build_corpus(MiningConfig(num_repositories=70, seed=11))
        dataset = build_dataset(corpus, FilterConfig(max_tokens=240))
        config = small_config()
        config.training.epochs = 8
        model = MPIRical.fit(dataset.splits.train, dataset.splits.validation, config,
                             verbose=True)
        evaluate_policy("MPI-RICAL (learned model)",
                        lambda stripped, _p: model.predict_code(stripped).generated_code)


if __name__ == "__main__":
    main()
