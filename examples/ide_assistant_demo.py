"""IDE-style assistance demo: advise on partially written MPI code.

Run with:  python examples/ide_assistant_demo.py [--epochs N]

The paper positions MPI-RICAL as an in-editor advisor that handles code still
being written (thanks to an error-tolerant parser).  This demo trains a small
model, then asks for advice on (a) a complete serial program about to be
parallelised and (b) an incomplete buffer with a syntax error — showing the
parse diagnostics alongside the suggestions, plus the MPI simulator verdict
for the rewritten program.
"""

from __future__ import annotations

import argparse

from repro.corpus import MiningConfig, build_corpus
from repro.dataset import FilterConfig, build_dataset
from repro.model.config import ExperimentConfig, ModelConfig, TrainingConfig
from repro.mpirical import MPIAssistant, MPIRical
from repro.mpisim import validate_program

SERIAL_DOT_PRODUCT = """#include <stdio.h>
#include <stdlib.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 64;
    double local_dot = 0.0;
    double global_dot = 0.0;
    int chunk = n / size;
    double *x = (double *) malloc(chunk * sizeof(double));
    double *y = (double *) malloc(chunk * sizeof(double));
    for (i = 0; i < chunk; i++) {
        x[i] = (double) (rank * chunk + i);
        y[i] = 2.0;
    }
    for (i = 0; i < chunk; i++) {
        local_dot += x[i] * y[i];
    }
    if (rank == 0) {
        printf("dot = %f\\n", global_dot);
    }
    free(x);
    free(y);
    return 0;
}
"""

INCOMPLETE_BUFFER = """#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size
    double total = 0.0;
    for (int i = rank; i < 100; i += size) {
        total += (double) i;
    }
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    args = parser.parse_args()

    print("training a small advisor model...")
    corpus = build_corpus(MiningConfig(num_repositories=50, seed=29))
    dataset = build_dataset(corpus, FilterConfig(max_tokens=240))
    config = ExperimentConfig(
        model=ModelConfig(d_model=64, num_heads=4, num_encoder_layers=2,
                          num_decoder_layers=2, ffn_dim=128, dropout=0.1),
        training=TrainingConfig(batch_size=8, epochs=args.epochs, learning_rate=2.5e-3,
                                warmup_steps=20, label_smoothing=0.05),
        max_source_tokens=260, max_xsbt_tokens=80, max_target_tokens=300,
    )
    model = MPIRical.fit(dataset.splits.train, dataset.splits.validation, config,
                         verbose=True)
    assistant = MPIAssistant(model)

    print("\n=== Scenario 1: complete serial program awaiting domain decomposition ===")
    session = assistant.advise(SERIAL_DOT_PRODUCT)
    print(session.summary())
    rewritten = assistant.rewrite(SERIAL_DOT_PRODUCT, session.advice)
    print("\nrewritten program:")
    print(rewritten)
    verdict = validate_program(rewritten, num_ranks=4)
    print(f"simulated run: parses={verdict.parses} runs={verdict.runs}")

    print("\n=== Scenario 2: incomplete buffer (live typing) ===")
    session = assistant.advise(INCOMPLETE_BUFFER)
    print("parse diagnostics (shown as soft warnings in an IDE):")
    for message in session.parse_diagnostics:
        print(f"  - {message}")
    print("suggestions:")
    print(session.summary())


if __name__ == "__main__":
    main()
