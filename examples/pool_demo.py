"""Worker-pool demo: a self-healing fleet of model servers behind a router.

Trains a small MPI-RICAL model, saves it as a checkpoint, then boots the
horizontal-scale-out tier on top of it:

* :class:`repro.serving.pool.WorkerPool` — 3 supervised ``server.py``
  subprocesses, each owning a registry replica over the same checkpoint and
  its own job WAL under ``<pool root>/workers/wN/``;
* :class:`repro.serving.router.Router` + ``make_router`` — the HTTP front
  speaking the exact same contract as a single server, with consistent-hash
  dispatch on the canonical cache key, health probes, retry/backoff and
  per-worker circuit breakers.

Then it runs the operational drills from the README runbook, live:

1. **hash affinity** — replaying a program (even reformatted) is a cache
   hit, because equal canonical keys always route to the same worker: the
   N per-process LRU caches behave like one sharded cache;
2. **SIGKILL under load** — one worker is killed mid-traffic; every request
   still answers 2xx (connect failures fail over along the hash ring) and
   the supervisor respawns the worker on the same port;
3. **graceful drain** — ``POST /admin/workers/w0/drain`` stops routing to
   one worker, waits out its in-flight work, and bounces it — the
   maintenance primitive;
4. **rolling alias swap** — a second model name is loaded fleet-wide, then
   the ``default`` alias is flipped worker-by-worker under traffic with
   zero dropped requests (the single-process hot-swap guarantee,
   generalised to a fleet).

Run with:  PYTHONPATH=src python examples/pool_demo.py
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.corpus import MiningConfig, build_corpus
from repro.dataset import build_dataset
from repro.model.config import tiny_config
from repro.mpirical import MPIRical
from repro.serving.pool import WorkerPool, server_worker_command
from repro.serving.router import Router, RouterPolicy, make_router


def train_checkpoint(workdir: Path) -> tuple[str, list[str]]:
    print("mining corpus + training a small demo model ...")
    corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
    dataset = build_dataset(corpus)
    config = tiny_config()
    config.training.max_steps_per_epoch = 8
    model = MPIRical.fit(dataset.splits.train[:40],
                         dataset.splits.validation[:8], config)
    checkpoint = str(model.save(workdir / "checkpoint"))
    programs = [ex.source_code for ex in dataset.splits.test[:4]]
    return checkpoint, programs


def worker_info(pool: WorkerPool, worker_id: str) -> dict:
    return next(w for w in pool.snapshot()["workers"] if w["id"] == worker_id)


def post(base: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pool-demo-"))
    checkpoint, programs = train_checkpoint(workdir)

    # The workers are `python -m repro.serving.server` subprocesses; hand
    # them this checkout's src/ so they resolve the same package.
    src_dir = str(Path(__file__).resolve().parents[1] / "src")
    env = {"PYTHONPATH": src_dir + os.pathsep + os.environ.get("PYTHONPATH", "")}

    print("\n--- booting a 3-worker fleet behind the router")
    pool = WorkerPool(3, server_worker_command(checkpoint),
                      root=workdir / "pool", env=env,
                      restart_backoff_base=0.25)
    pool.start()
    router = Router(pool=pool, policy=RouterPolicy(read_timeout=120.0)).start()
    front = make_router(router, port=0, quiet=True)
    base = "http://%s:%s" % front.server_address[:2]
    threading.Thread(target=front.serve_forever, daemon=True).start()
    try:
        assert router.wait_full_strength(120.0), router.health()[1]
        status, health = get(base, "/healthz")
        print(f"    fleet up at {base}: status={health['status']!r} "
              f"alive={health['pool']['alive']}/{health['pool']['size']}")

        print("\n--- wave 1: hash affinity shards the per-worker caches")
        code = programs[0]
        post(base, "/v1/advise", {"code": code})          # cold decode
        _, warm = post(base, "/v1/advise", {"code": code})
        _, edited = post(base, "/v1/advise",
                         {"code": f"// reviewed\n{code}\n"})
        key = router.affinity_key(json.dumps({"code": code}).encode())
        home = router.plan(key)[0].worker_id
        print(f"    replay cached={warm['cached']}, reformatted replay "
              f"cached={edited['cached']} — both homed on {home} "
              f"(canonical-key dispatch, not raw-byte dispatch)")

        print("\n--- wave 2: SIGKILL w1 under concurrent traffic")
        victim_pid = worker_info(pool, "w1")["pid"]
        statuses: list[int] = []
        lock = threading.Lock()

        def fire(n: int) -> None:
            status, _ = post(base, "/v1/advise",
                             {"code": programs[n % len(programs)]})
            with lock:
                statuses.append(status)
                if len(statuses) == 4:      # mid-load, not before, not after
                    pool.kill("w1")

        with ThreadPoolExecutor(max_workers=4) as executor:
            list(executor.map(fire, range(24)))
        healed = router.wait_full_strength(60.0)
        respawned = worker_info(pool, "w1")
        metrics = router.metrics.snapshot()
        print(f"    {len(statuses)} requests during the kill, "
              f"non-2xx: {sum(1 for s in statuses if s >= 300)} "
              f"({metrics['failovers_total']} failover(s), "
              f"{metrics['retries_total']} retrie(s))")
        print(f"    supervisor respawned w1: pid {victim_pid} -> "
              f"{respawned['pid']} (restarts={respawned['restarts']}); "
              f"pool back at full strength: {healed}")

        print("\n--- wave 3: graceful drain of w0 (the maintenance primitive)")
        pid_before = worker_info(pool, "w0")["pid"]
        status, drained = post(base, "/admin/workers/w0/drain", {})
        assert router.wait_full_strength(60.0)
        pid_after = worker_info(pool, "w0")["pid"]
        print(f"    drain => {status}: acknowledged={drained['acknowledged']} "
              f"drained={drained['drained']} pending={drained['pending']} "
              f"restarted={drained['restarted']}")
        print(f"    w0 bounced cleanly: pid {pid_before} -> {pid_after}")

        print("\n--- wave 4: rolling alias swap under traffic, zero drops")
        status, loaded = post(base, "/v1/models/demo-next/load",
                              {"checkpoint": checkpoint})
        assert status == 200, loaded
        swap_statuses: list[int] = []

        def traffic() -> None:
            for n in range(8):
                status, _ = post(base, "/v1/advise",
                                 {"code": programs[n % len(programs)]})
                swap_statuses.append(status)

        thread = threading.Thread(target=traffic)
        thread.start()
        time.sleep(0.05)
        swap = router.rolling_swap("demo-next")
        thread.join()
        status, models = get(base, "/v1/models")
        print(f"    swap status={swap['status']} converged={swap['converged']} "
              f"-> {swap['current']}; per-worker: "
              f"{[(w['worker'], w['current']) for w in swap['workers']]}")
        print(f"    traffic during the swap: {len(swap_statuses)} requests, "
              f"non-2xx: {sum(1 for s in swap_statuses if s >= 300)}")
        print(f"    every replica now serves default={models['default']!r}")

        print("\n--- router /metrics snapshot")
        print(json.dumps(router.metrics_body(), indent=2))
    finally:
        front.shutdown()
        front.server_close()
        router.close()
        pool.stop()


if __name__ == "__main__":
    main()
