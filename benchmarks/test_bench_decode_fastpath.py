"""Decode fast-path throughput — no-tape inference engine vs. the tape path.

PR 3's tentpole moves the decode hot path off the autograd tape: no tape or
backward-closure allocation, float32 compute with cached weight casts,
preallocated KV-cache buffers, and fused single-pass attention kernels.
This benchmark records the perf trajectory of exactly that switch: the same
batched decoders run once under ``tape_mode()`` (the training-grade
reference path) and once on the default inference fast path, for greedy at
batch 8 and beam search at beam 4 — the serving layer's two decode
configurations.  The acceptance bar (ISSUE 3) is fast path >= 2x tape-path
tokens/s for greedy at batch 8.

``REPRO_BENCH_SMOKE=1`` (the CI smoke step) swaps the session-scoped bench
model for a tiny self-trained one and asserts only correctness: the float64
fast path must be exact-match identical to the tape path and the float32
default must agree on every argmax token sequence.  The timing gate runs in
the regular benchmark profiles, where decodes are long enough to measure.

Results land in ``benchmarks/results/decode_fastpath.{json,txt}``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.model.autograd import inference_mode, tape_mode
from repro.model.generation import beam_search_decode_batch, greedy_decode_batch
from repro.utils.textio import format_table

from .conftest import save_result, save_text

BATCH_SIZE = 8
BEAM_SIZE = 4
LENGTH_PENALTY = 0.6


def smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


def max_length() -> int:
    return 24 if smoke_mode() else 96


@pytest.fixture(scope="module")
def decode_setup(request):
    """(model, encoded sources): shared bench model, or a tiny one under smoke."""
    if smoke_mode():
        from repro.corpus import MiningConfig, build_corpus
        from repro.dataset import build_dataset
        from repro.model.config import tiny_config
        from repro.mpirical import MPIRical

        corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
        dataset = build_dataset(corpus)
        config = tiny_config()
        config.training.max_steps_per_epoch = 8
        model = MPIRical.fit(dataset.splits.train[:40],
                             dataset.splits.validation[:8], config)
        sources = [ex.source_code for ex in dataset.splits.test[:BATCH_SIZE]]
    else:
        model = request.getfixturevalue("bench_model")
        dataset = request.getfixturevalue("bench_dataset")
        sources = [ex.source_code for ex in dataset.splits.test[:BATCH_SIZE]]
    assert len(sources) >= BATCH_SIZE
    encoded = [model._encode_for_inference(src, None) for src in sources]
    return model, encoded


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def _best_of_two(fn):
    """Best-of-2 wall time: one noisy-neighbor blip must not gate CI."""
    out, first = _timed(fn)
    _, second = _timed(fn)
    return out, min(first, second)


def test_decode_fastpath_throughput(benchmark, decode_setup):
    model, encoded = decode_setup
    vocab = model.encoder.vocab
    ids = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id, pad_id=vocab.pad_id)
    greedy_args = dict(ids, max_length=max_length())
    beam_args = dict(ids, beam_size=BEAM_SIZE, max_length=max_length(),
                     length_penalty=LENGTH_PENALTY)

    def tape_greedy():
        with tape_mode():
            return greedy_decode_batch(model.model, encoded, **greedy_args)

    def fast_greedy():
        return greedy_decode_batch(model.model, encoded, **greedy_args)

    def tape_beam():
        with tape_mode():
            return beam_search_decode_batch(model.model, encoded, **beam_args)

    def fast_beam():
        return beam_search_decode_batch(model.model, encoded, **beam_args)

    # Correctness first (also the warm-up): the float64 fast path is
    # exact-match identical to the tape path, and the float32 default agrees
    # on every argmax token sequence.
    greedy_ref = tape_greedy()
    beam_ref = tape_beam()
    with inference_mode(dtype=np.float64):
        assert greedy_decode_batch(model.model, encoded, **greedy_args) == greedy_ref
        assert beam_search_decode_batch(model.model, encoded, **beam_args) == beam_ref
    assert fast_greedy() == greedy_ref
    assert fast_beam() == beam_ref

    _, tape_greedy_s = _best_of_two(tape_greedy)
    start = time.perf_counter()
    benchmark.pedantic(fast_greedy, rounds=1, iterations=1)
    fast_greedy_s = time.perf_counter() - start
    _, fast_greedy_retry = _best_of_two(fast_greedy)
    fast_greedy_s = min(fast_greedy_s, fast_greedy_retry)

    _, tape_beam_s = _best_of_two(tape_beam)
    _, fast_beam_s = _best_of_two(fast_beam)

    greedy_tokens = sum(len(out) for out in greedy_ref)
    beam_tokens = sum(len(out) for out in beam_ref)
    greedy_speedup = tape_greedy_s / fast_greedy_s
    beam_speedup = tape_beam_s / fast_beam_s

    def tps(tokens, seconds):
        return tokens / seconds if seconds else 0.0

    rows = [
        [f"greedy tape path (B={len(encoded)})", f"{tape_greedy_s:.3f}",
         f"{tps(greedy_tokens, tape_greedy_s):.1f}", "1.00x"],
        [f"greedy fast path (B={len(encoded)})", f"{fast_greedy_s:.3f}",
         f"{tps(greedy_tokens, fast_greedy_s):.1f}", f"{greedy_speedup:.2f}x"],
        [f"beam tape path (B={len(encoded)}, K={BEAM_SIZE})", f"{tape_beam_s:.3f}",
         f"{tps(beam_tokens, tape_beam_s):.1f}", "1.00x"],
        [f"beam fast path (B={len(encoded)}, K={BEAM_SIZE})", f"{fast_beam_s:.3f}",
         f"{tps(beam_tokens, fast_beam_s):.1f}", f"{beam_speedup:.2f}x"],
    ]
    table = format_table(["Decoder", "Wall s", "Tokens/s", "Speedup"], rows)
    print(f"\nDecode fast path — no-tape engine vs tape path "
          f"({greedy_tokens} greedy / {beam_tokens} beam tokens)\n" + table)
    save_result("decode_fastpath", {
        "batch_size": len(encoded),
        "beam_size": BEAM_SIZE,
        "length_penalty": LENGTH_PENALTY,
        "max_length": max_length(),
        "smoke": smoke_mode(),
        "greedy_tokens": greedy_tokens,
        "beam_tokens": beam_tokens,
        "greedy_tape_seconds": tape_greedy_s,
        "greedy_fast_seconds": fast_greedy_s,
        "greedy_tape_tokens_per_s": tps(greedy_tokens, tape_greedy_s),
        "greedy_fast_tokens_per_s": tps(greedy_tokens, fast_greedy_s),
        "greedy_speedup": greedy_speedup,
        "beam_tape_seconds": tape_beam_s,
        "beam_fast_seconds": fast_beam_s,
        "beam_tape_tokens_per_s": tps(beam_tokens, tape_beam_s),
        "beam_fast_tokens_per_s": tps(beam_tokens, fast_beam_s),
        "beam_speedup": beam_speedup,
    })
    save_text("decode_fastpath", table)

    if not smoke_mode():
        assert greedy_speedup >= 2.0, (
            f"fast-path greedy decode must be >= 2x the tape path at batch "
            f"{BATCH_SIZE}, got {greedy_speedup:.2f}x")
