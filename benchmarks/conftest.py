"""Shared fixtures for the benchmark harness.

Every table/figure benchmark draws from the same session-scoped artefacts so
the expensive steps (corpus synthesis, model training) run exactly once per
benchmark session.

Profiles
--------
The ``REPRO_BENCH_PROFILE`` environment variable selects the scale:

* ``quick`` (default) — small corpus, few epochs; the whole benchmark suite
  runs in ~10 minutes on a laptop CPU.  Scores are well below the paper's
  absolute numbers but preserve the qualitative shape (see EXPERIMENTS.md).
* ``full``  — larger corpus and longer training; several hours on CPU,
  approaches the reproduction's best achievable scores.

Results are also written to ``benchmarks/results/`` as JSON/text so the
regenerated tables survive the pytest run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.corpus import MiningConfig, build_corpus
from repro.dataset import FilterConfig, build_dataset
from repro.model.config import ExperimentConfig, ModelConfig, TrainingConfig
from repro.mpirical import MPIRical

RESULTS_DIR = Path(__file__).parent / "results"


def bench_profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "quick")


def profile_settings(profile: str) -> dict:
    """Corpus / training scale per profile."""
    if profile == "full":
        return {
            "num_repositories": 300,
            "max_tokens": 320,
            "epochs": 30,
            "eval_limit": 60,
            "d_model": 96,
            "layers": 2,
        }
    return {
        "num_repositories": 70,
        "max_tokens": 240,
        "epochs": 8,
        "eval_limit": 20,
        "d_model": 64,
        "layers": 2,
    }


def make_experiment_config(settings: dict) -> ExperimentConfig:
    return ExperimentConfig(
        model=ModelConfig(
            d_model=settings["d_model"],
            num_heads=4,
            num_encoder_layers=settings["layers"],
            num_decoder_layers=settings["layers"],
            ffn_dim=settings["d_model"] * 2,
            dropout=0.1,
        ),
        training=TrainingConfig(
            batch_size=8,
            epochs=settings["epochs"],
            learning_rate=2.5e-3,
            warmup_steps=20,
            label_smoothing=0.05,
            seed=7,
        ),
        max_source_tokens=260,
        max_xsbt_tokens=80,
        max_target_tokens=300,
    )


def save_result(name: str, payload) -> Path:
    """Persist one benchmark's regenerated table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def save_text(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def bench_settings():
    return profile_settings(bench_profile())


@pytest.fixture(scope="session")
def bench_corpus(bench_settings):
    """The synthetic MPICodeCorpus used by every corpus-level benchmark."""
    return build_corpus(MiningConfig(num_repositories=bench_settings["num_repositories"],
                                     seed=11))


@pytest.fixture(scope="session")
def bench_dataset(bench_corpus, bench_settings):
    """Filtered + split dataset (Figure 4 pipeline)."""
    return build_dataset(bench_corpus, FilterConfig(max_tokens=bench_settings["max_tokens"]))


@pytest.fixture(scope="session")
def bench_model(bench_dataset, bench_settings):
    """The MPI-RICAL model trained once and shared by Table II / III / Figure 5."""
    config = make_experiment_config(bench_settings)
    return MPIRical.fit(bench_dataset.splits.train, bench_dataset.splits.validation,
                        config, verbose=True)
