"""Ablation A2 — learned model vs the deterministic rule-based baseline.

The paper's motivation for a data-driven assistant is that rule-based tooling
cannot place the communication calls of a domain decomposition.  The ablation
quantifies that: the rule baseline recovers (at most) the canonical
Init/rank/size/Finalize prologue but misses point-to-point and collective
calls, so its recall on the numerical benchmark is bounded well below 1.
"""

from repro.benchprograms import BENCHMARK_PROGRAMS
from repro.dataset.removal import remove_mpi_calls
from repro.evaluation.report import evaluate_benchmark
from repro.mpirical.baseline import RuleBasedBaseline
from repro.utils.textio import format_table

from .conftest import save_result, save_text


def _run_baseline():
    baseline = RuleBasedBaseline()
    rows = []
    for program in BENCHMARK_PROGRAMS:
        stripped = remove_mpi_calls(program.source).stripped_code
        rows.append((program.name, baseline.predict_code(stripped), program.source))
    return evaluate_benchmark(rows)


def test_ablation_rule_baseline_on_numerical_benchmark(benchmark):
    result = benchmark.pedantic(_run_baseline, rounds=1, iterations=1)

    rows = [[p.name, f"{p.f1:.2f}", f"{p.precision:.2f}", f"{p.recall:.2f}"]
            for p in result.programs]
    rows.append(["Total", f"{result.total.f1:.2f}", f"{result.total.precision:.2f}",
                 f"{result.total.recall:.2f}"])
    table = format_table(["Code", "F1", "Precision", "Recall"], rows)
    print("\nAblation A2 — rule-based baseline on the numerical benchmark\n" + table)
    save_result("ablation_baseline", {
        "rows": [vars(p) for p in result.programs],
        "total": vars(result.total),
    })
    save_text("ablation_baseline", table)

    total = result.total
    # The rules recover part of the common core ...
    assert total.recall > 0.0
    # ... but structurally cannot reach full recall: every program also needs
    # Scatter/Gather/Send/Recv/Bcast placements the rules never produce.
    assert total.recall < 0.8
    # Rule insertions are near-canonical, so precision should be the stronger
    # of the two — the same asymmetry the learned model shows in Table III.
    assert total.precision >= total.recall
