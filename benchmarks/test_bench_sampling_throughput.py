"""Sampling throughput — batched vs. sequential seeded sampling.

ISSUE 4 opens sampling as a brand-new serving workload
(:class:`repro.model.decoding.SampleStrategy`): temperature / top-k / top-p
with an explicit seed.  Like greedy and beam before it, the batched
implementation must earn its keep — one ``decode_step`` per generated
position for the whole batch instead of one per source — while staying
**exact-match identical** to the per-source sampler (the seed pins every
token, so equality is bitwise, not statistical).  The acceptance bar is
>= 2x tokens/s at batch 8.

``REPRO_BENCH_SMOKE=1`` (the CI smoke step) swaps the session-scoped bench
model for a tiny self-trained one and asserts only the exact-match
equivalence and plumbing — the tiny model's decodes are too short for a
stable timing ratio, so the >= 2x gate runs in the regular benchmark
profiles only.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.model.decoding import sample_decode, sample_decode_batch
from repro.utils.textio import format_table

from .conftest import save_result, save_text

BATCH_SIZE = 8
TEMPERATURE = 0.8
TOP_K = 16
TOP_P = 0.95
SEED = 1234


def smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


def max_length() -> int:
    return 24 if smoke_mode() else 96


@pytest.fixture(scope="module")
def sampling_setup(request):
    """(model, sources): the shared bench model, or a tiny one under smoke."""
    if smoke_mode():
        from repro.corpus import MiningConfig, build_corpus
        from repro.dataset import build_dataset
        from repro.model.config import tiny_config
        from repro.mpirical import MPIRical

        corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
        dataset = build_dataset(corpus)
        config = tiny_config()
        config.training.max_steps_per_epoch = 8
        model = MPIRical.fit(dataset.splits.train[:40],
                             dataset.splits.validation[:8], config)
        sources = [ex.source_code for ex in dataset.splits.test[:BATCH_SIZE]]
    else:
        model = request.getfixturevalue("bench_model")
        dataset = request.getfixturevalue("bench_dataset")
        sources = [ex.source_code for ex in dataset.splits.test[:BATCH_SIZE]]
    return model, sources


def test_batched_sampling_throughput(benchmark, sampling_setup):
    model, sources = sampling_setup
    assert len(sources) >= BATCH_SIZE
    encoded = [model._encode_for_inference(src, None) for src in sources]
    vocab = model.encoder.vocab
    decode_args = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id,
                       pad_id=vocab.pad_id, max_length=max_length(),
                       temperature=TEMPERATURE, top_k=TOP_K, top_p=TOP_P,
                       seed=SEED)

    def sequential():
        return [sample_decode(model.model, ids, **decode_args)
                for ids in encoded]

    def batched():
        return sample_decode_batch(model.model, encoded, **decode_args)

    # Warm-up (NumPy/BLAS first-call effects), then the acceptance-critical
    # exact-match check: the same seed must select the very same tokens
    # batched and sequentially.
    assert batched() == sequential()

    # Best-of-2 timings: the assertion below gates CI, so one noisy-neighbor
    # blip on a shared runner must not fail the build.
    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - start

    sequential_out, sequential_s = timed(sequential)
    _, sequential_retry = timed(sequential)
    sequential_s = min(sequential_s, sequential_retry)

    start = time.perf_counter()
    batched_out = benchmark.pedantic(batched, rounds=1, iterations=1)
    batched_s = time.perf_counter() - start
    _, batched_retry = timed(batched)
    batched_s = min(batched_s, batched_retry)

    tokens = sum(len(ids) for ids in sequential_out)
    sequential_tps = tokens / sequential_s
    batched_tps = tokens / batched_s
    speedup = batched_tps / sequential_tps

    rows = [
        ["sequential sample_decode", f"{sequential_s:.2f}",
         f"{sequential_tps:.1f}", "1.00x"],
        [f"sample_decode_batch (B={len(encoded)})",
         f"{batched_s:.2f}", f"{batched_tps:.1f}", f"{speedup:.2f}x"],
    ]
    table = format_table(["Decoder", "Wall s", "Tokens/s", "Speedup"], rows)
    print(f"\nSampling throughput — batched vs sequential seeded sampling "
          f"({tokens} tokens, T={TEMPERATURE}, k={TOP_K}, p={TOP_P}, "
          f"seed={SEED})\n" + table)
    save_result("sampling_throughput", {
        "batch_size": len(encoded),
        "temperature": TEMPERATURE,
        "top_k": TOP_K,
        "top_p": TOP_P,
        "seed": SEED,
        "max_length": max_length(),
        "smoke": smoke_mode(),
        "generated_tokens": tokens,
        "sequential_seconds": sequential_s,
        "batched_seconds": batched_s,
        "sequential_tokens_per_s": sequential_tps,
        "batched_tokens_per_s": batched_tps,
        "speedup": speedup,
    })
    save_text("sampling_throughput", table)

    assert batched_out == sequential_out
    if not smoke_mode():
        assert speedup >= 2.0, (
            f"batched sampling must be >= 2x sequential, got {speedup:.2f}x")
