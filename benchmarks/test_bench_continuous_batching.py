"""Continuous batching — tokens/s and TTFT vs. the static micro-batcher.

The static micro-batcher schedules at *request* granularity: a flush decodes
to completion before the next batch forms, so under mixed workloads the
decoder spends long tails on a near-empty batch (the convoy effect) while
new arrivals queue behind the whole flush.  The continuous scheduler
(:mod:`repro.serving.sched`) schedules at *iteration* granularity — finished
requests retire and queued requests join between any two decode steps — so
the batch stays full whenever there is work, and a request's first token
streams out as soon as its own first step runs rather than when a flush
completes.

The gap is widest on realistic mixed traffic.  The micro-batcher can only
coalesce requests whose ``strategy.canonical()`` matches (the service's
group key — every output-changing parameter is in it), so uniquely-seeded
sampling requests, the natural "give me a different suggestion" traffic,
decode as width-1 singletons on the static path.  The continuous batch
carries a per-row seeded state machine per request, so the same traffic
decodes at full width.

Engine-to-engine comparison under one seeded Poisson arrival process of
mixed short/long requests (seeded sampling, greedy and beam, each request
on its own ``max_length`` budget):

* **tokens/s** — total generated tokens over the first-arrival → last-retire
  wall; the acceptance bar (ISSUE 10) is >= 1.3x the static micro-batcher.
* **p95 TTFT** — time from a request's arrival to its first streamed token.
  The static path surfaces nothing until its whole flush finishes, so its
  TTFT is the request's completion latency — exactly the product gap
  continuous batching exists to close; the bar is *strictly lower* p95.

Both engines must decode every request bitwise-identical to its sequential
reference (the property ``tests/test_decoding_differential.py`` pins down);
that assertion runs in every profile.  ``REPRO_BENCH_SMOKE=1`` (the CI smoke
step) swaps the session-scoped bench model for a tiny self-trained one and
asserts only exactness and plumbing — timing gates run in the regular
benchmark profiles only.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.model.decoding import (BeamStrategy, GreedyStrategy,
                                  SampleStrategy)
from repro.serving.batching import MicroBatcher
from repro.serving.sched import ContinuousScheduler, SchedulerPolicy, SchedWork
from repro.utils.textio import format_table

from .conftest import save_result, save_text

MAX_ROWS = 8
SEED = 23


def smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


def workload_shape() -> tuple[int, tuple[int, ...], float]:
    """(num_requests, per-request max_length cycle, mean arrival gap s).

    The length cycle is what gives the workload its shape: the static path
    can only batch requests sharing ``(strategy, max_length)``, so varied
    per-request budgets fragment it into narrow flushes, while the
    continuous scheduler packs every arrival into one full-width batch.
    """
    if smoke_mode():
        return 8, (8, 12, 16, 20), 0.005
    return 32, (24, 36, 48, 60, 72, 84, 96, 108), 0.005


@pytest.fixture(scope="module")
def bench_setup(request):
    """(model, sources): the shared bench model, or a tiny one under smoke."""
    if smoke_mode():
        from repro.corpus import MiningConfig, build_corpus
        from repro.dataset import build_dataset
        from repro.model.config import tiny_config
        from repro.mpirical import MPIRical

        corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
        dataset = build_dataset(corpus)
        config = tiny_config()
        config.training.max_steps_per_epoch = 8
        model = MPIRical.fit(dataset.splits.train[:40],
                             dataset.splits.validation[:8], config)
        sources = [ex.source_code for ex in dataset.splits.test[:8]]
    else:
        model = request.getfixturevalue("bench_model")
        dataset = request.getfixturevalue("bench_dataset")
        sources = [ex.source_code for ex in dataset.splits.test[:8]]
    return model, sources


class _PreEncodedPipeline:
    """The bench pipeline with encoding pinned to a precomputed table and
    packaging reduced to the raw ids, so both engines measure *decode*
    scheduling — not lexing or suggestion diffing — and results compare
    directly against the sequential references."""

    def __init__(self, mpirical, table: dict[str, list[int]]) -> None:
        self.model = mpirical.model
        self.encoder = mpirical.encoder
        self._table = table

    def encode_source_ids(self, source_code, xsbt=None, tokens=None):
        return self._table[source_code]

    def package_prediction(self, source_code, generated_ids):
        return list(generated_ids)


class _Request:
    """One workload item plus its measured timeline."""

    def __init__(self, key: str, ids: list[int], strategy, max_length: int):
        self.key = key
        self.ids = ids
        self.strategy = strategy
        self.max_length = max_length
        self.arrived: float = 0.0
        self.first_token: float | None = None
        self.completed: float = 0.0
        self.result: list[int] | None = None

    def on_token(self, _token: int) -> None:
        if self.first_token is None:
            self.first_token = time.perf_counter()

    def ttft(self) -> float:
        first = self.first_token if self.first_token is not None \
            else self.completed
        return first - self.arrived


def build_workload(model, sources) -> list[_Request]:
    """Mixed Poisson workload over all three strategy families.

    Most of the traffic is seeded sampling with a *unique seed per
    request* — the realistic way clients ask for diverse suggestions, and
    the case the static path fundamentally cannot batch: the micro-batcher
    groups by ``strategy.canonical()`` (the service's rule — the seed
    changes the output, so it is in the group key), which makes every
    seeded request a singleton width-1 decode.  The continuous scheduler
    batches them anyway, because each row carries its own seeded state
    machine and row independence keeps the tokens bitwise-identical.  A
    greedy and a beam request ride along every eighth arrival, each
    request on its own decode budget from the length cycle."""
    num_requests, lengths, _ = workload_shape()
    encoded = {src: model._encode_for_inference(src, None) for src in sources}
    live = [src for src in sources if encoded[src]]
    requests = []
    for index in range(num_requests):
        source = live[index % len(live)]
        if index % 8 == 7:
            strategy = BeamStrategy(beam_size=2, length_penalty=0.6)
        elif index % 8 == 3:
            strategy = GreedyStrategy()
        else:
            strategy = SampleStrategy(temperature=0.8, seed=1000 + index)
        requests.append(_Request(f"r{index}", encoded[source], strategy,
                                 lengths[index % len(lengths)]))
    return requests


def arrival_gaps(count: int) -> list[float]:
    _, _, scale = workload_shape()
    rng = np.random.default_rng(SEED)
    return [float(gap) for gap in rng.exponential(scale, size=count)]


def run_continuous(model, requests: list[_Request]) -> float:
    pipeline = _PreEncodedPipeline(model, {r.key: r.ids for r in requests})
    entry = type("Entry", (), {"identity": "bench@0",
                               "ensure_loaded": lambda self: pipeline})()
    gaps = arrival_gaps(len(requests))
    futures = []
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=MAX_ROWS)) as sched:
        start = time.perf_counter()
        for request, gap in zip(requests, gaps):
            time.sleep(gap)
            request.arrived = time.perf_counter()
            work = SchedWork(source_code=request.key, xsbt=None, tokens=None,
                             strategy=request.strategy, entry=entry,
                             max_length=request.max_length,
                             on_token=request.on_token)
            futures.append(sched.submit(work))
        for request, future in zip(requests, futures):
            request.result = future.result(timeout=1200)
            request.completed = time.perf_counter()
    return time.perf_counter() - start


def run_static(model, requests: list[_Request]) -> float:
    """The service's static path, engine-to-engine: one micro-batch flush
    per (strategy, max_length) group, decoded to completion.  One decode
    worker, matching the continuous scheduler's single decode thread, so
    the comparison isolates the *scheduling policy* (iteration-level
    join/retire vs flush-to-completion) rather than thread counts."""
    vocab = model.encoder.vocab

    def process_batch(payloads: list[_Request]) -> list[list[int]]:
        strategy = payloads[0].strategy
        return strategy.decode_batch(
            model.model, [p.ids for p in payloads], sos_id=vocab.sos_id,
            eos_id=vocab.eos_id, pad_id=vocab.pad_id,
            max_length=payloads[0].max_length)

    gaps = arrival_gaps(len(requests))
    futures = []
    with MicroBatcher(process_batch, max_batch_size=MAX_ROWS, max_wait_ms=5,
                      num_workers=1,
                      group_key=lambda p: (p.strategy.canonical(),
                                           p.max_length)) as batcher:
        start = time.perf_counter()
        for request, gap in zip(requests, gaps):
            time.sleep(gap)
            request.arrived = time.perf_counter()
            futures.append(batcher.submit(request))
        for request, future in zip(requests, futures):
            request.result = future.result(timeout=1200)
            request.completed = time.perf_counter()
            # The static flush yields everything at once: first token time
            # is completion time (request.first_token stays None).
    return time.perf_counter() - start


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def test_continuous_batching_throughput_and_ttft(bench_setup):
    model, sources = bench_setup
    vocab = model.encoder.vocab

    continuous = build_workload(model, sources)
    static = build_workload(model, sources)
    assert len(continuous) >= 8

    # Sequential references: every request must decode bitwise-identically
    # through either engine (this is the acceptance-critical check and runs
    # in every profile, smoke included).
    expected = [request.strategy.decode(model.model, request.ids,
                                        sos_id=vocab.sos_id,
                                        eos_id=vocab.eos_id,
                                        pad_id=vocab.pad_id,
                                        max_length=request.max_length)
                for request in continuous]

    continuous_s = run_continuous(model, continuous)
    static_s = run_static(model, static)

    assert [r.result for r in continuous] == expected
    assert [r.result for r in static] == expected

    tokens = sum(len(ids) for ids in expected)
    continuous_tps = tokens / continuous_s
    static_tps = tokens / static_s
    speedup = continuous_tps / static_tps
    continuous_p95 = percentile([r.ttft() for r in continuous], 0.95)
    static_p95 = percentile([r.ttft() for r in static], 0.95)
    continuous_p50 = percentile([r.ttft() for r in continuous], 0.50)
    static_p50 = percentile([r.ttft() for r in static], 0.50)

    rows = [
        ["static micro-batcher", f"{static_s:.2f}", f"{static_tps:.1f}",
         f"{static_p50 * 1000:.0f}", f"{static_p95 * 1000:.0f}", "1.00x"],
        [f"continuous scheduler (rows={MAX_ROWS})", f"{continuous_s:.2f}",
         f"{continuous_tps:.1f}", f"{continuous_p50 * 1000:.0f}",
         f"{continuous_p95 * 1000:.0f}", f"{speedup:.2f}x"],
    ]
    table = format_table(
        ["Engine", "Wall s", "Tokens/s", "TTFT p50 ms", "TTFT p95 ms",
         "Speedup"], rows)
    print(f"\nContinuous batching — {len(continuous)} Poisson arrivals, "
          f"{tokens} tokens\n" + table)
    save_result("continuous_batching", {
        "requests": len(continuous),
        "max_rows": MAX_ROWS,
        "smoke": smoke_mode(),
        "generated_tokens": tokens,
        "static_seconds": static_s,
        "continuous_seconds": continuous_s,
        "static_tokens_per_s": static_tps,
        "continuous_tokens_per_s": continuous_tps,
        "static_ttft_p50_s": static_p50,
        "continuous_ttft_p50_s": continuous_p50,
        "static_ttft_p95_s": static_p95,
        "continuous_ttft_p95_s": continuous_p95,
        "speedup": speedup,
    })
    save_text("continuous_batching", table)

    if not smoke_mode():
        assert speedup >= 1.3, (
            f"continuous batching must be >= 1.3x the static micro-batcher, "
            f"got {speedup:.2f}x")
        assert continuous_p95 < static_p95, (
            f"continuous p95 TTFT ({continuous_p95:.3f}s) must be strictly "
            f"below static ({static_p95:.3f}s)")


def test_streaming_first_token_beats_full_decode(bench_setup):
    """A single streamed greedy request's first token arrives well before the
    full decode completes — the per-iteration streaming contract."""
    model, sources = bench_setup
    pipeline = _PreEncodedPipeline(
        model, {src: model._encode_for_inference(src, None)
                for src in sources})
    source = next(src for src in sources
                  if pipeline.encode_source_ids(src))
    entry = type("Entry", (), {"identity": "bench@0",
                               "ensure_loaded": lambda self: pipeline})()
    stamps: list[float] = []
    done = threading.Event()
    with ContinuousScheduler(policy=SchedulerPolicy(max_rows=MAX_ROWS)) as sched:
        work = SchedWork(source_code=source, xsbt=None, tokens=None,
                         strategy=GreedyStrategy(), entry=entry,
                         max_length=workload_shape()[1][-1],
                         on_token=lambda _t: stamps.append(time.perf_counter()))
        start = time.perf_counter()
        future = sched.submit(work)
        future.add_done_callback(lambda _f: done.set())
        result = future.result(timeout=1200)
        assert done.wait(timeout=30)
        end = time.perf_counter()
    assert len(stamps) == len(result)
    if len(result) >= 4:
        # The first token streamed in the first quarter of the decode.
        assert stamps[0] - start < (end - start) * 0.5
