"""Figure 3 — histogram of the Init–Finalize span / whole-program-length ratio.

The paper's observation: most MPI programs have more than half of their lines
inside the parallel region (between MPI_Init and MPI_Finalize), which is what
makes the corpus suitable for training.  The benchmark regenerates the
histogram series and asserts the median ratio exceeds 0.5.
"""

import numpy as np

from repro.corpus.statistics import (
    files_with_init_and_finalize,
    init_finalize_ratio_histogram,
    median_parallel_ratio,
)
from repro.utils.textio import format_table

from .conftest import save_result, save_text


def test_fig3_init_finalize_ratio_histogram(benchmark, bench_corpus):
    counts, edges = benchmark.pedantic(init_finalize_ratio_histogram,
                                       args=(bench_corpus,), kwargs={"bins": 20},
                                       rounds=1, iterations=1)

    rows = [
        [f"{edges[i]:.2f}-{edges[i + 1]:.2f}", int(counts[i])]
        for i in range(len(counts))
    ]
    table = format_table(["Lines Ratio", "Frequency"], rows)
    median = median_parallel_ratio(bench_corpus)
    both = files_with_init_and_finalize(bench_corpus)
    print("\nFigure 3 — Init-Finalize to all-lines ratio histogram\n" + table)
    print(f"median ratio = {median:.3f}; files with both Init and Finalize = {both}")
    save_result("fig3_parallel_ratio", {
        "counts": [int(c) for c in counts],
        "edges": [float(e) for e in edges],
        "median_ratio": median,
        "files_with_init_and_finalize": both,
    })
    save_text("fig3_parallel_ratio", table)

    assert counts.sum() > 0
    # Paper: most programs have more than half their lines in the parallel region.
    assert median > 0.5
    # Mass concentrates in the upper half of the ratio range.
    upper_mass = counts[len(counts) // 2:].sum()
    assert upper_mass >= counts.sum() * 0.5
    assert np.isclose(edges[0], 0.0) and np.isclose(edges[-1], 1.0)
