"""Figure 5 — training loss, validation loss and accuracy per epoch.

The paper trains SPT-Code for 5 epochs (batch 32, 320 tokens) and plots the
three curves.  The reproduction trains its NumPy Transformer on the synthetic
MPICodeCorpus and regenerates the same three series; the asserted shape is
that training and validation loss decrease monotonically-ish over epochs and
token accuracy increases.
"""

from repro.utils.textio import format_table

from .conftest import save_result, save_text


def test_fig5_training_curves(benchmark, bench_model):
    history = benchmark.pedantic(lambda: bench_model.history, rounds=1, iterations=1)

    rows = [
        [m.epoch, f"{m.train_loss:.4f}", f"{m.validation_loss:.4f}",
         f"{m.validation_accuracy:.3f}", f"{m.seconds:.1f}"]
        for m in history.epochs
    ]
    table = format_table(["Epoch", "Training Loss", "Validation Loss", "Accuracy", "Seconds"],
                         rows)
    print("\nFigure 5 — training curves\n" + table)
    save_result("fig5_training_curves", [vars(m) for m in history.epochs])
    save_text("fig5_training_curves", table)

    train = history.train_losses()
    validation = history.validation_losses()
    accuracy = history.validation_accuracies()

    assert len(train) >= 2
    # Loss decreases over training; accuracy increases.
    assert train[-1] < train[0]
    assert validation[-1] < validation[0]
    assert accuracy[-1] > accuracy[0]
