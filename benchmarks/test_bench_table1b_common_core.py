"""Table Ib — MPI Common Core per-file counts.

Paper values (per-file counts over the raw corpus): Finalize 35,983;
Comm_rank 32,312; Comm_size 28,742; Init 25,114; Recv 10,340; Send 9,841;
Reduce 8,503; Bcast 5,296.  The reproduction asserts the two qualitative
claims: the environment-management four head the histogram, and the overall
per-function distribution is (near) exponentially decreasing with the common
core at the head.
"""

from repro.corpus.statistics import (
    common_core_counts,
    is_exponentially_decreasing,
    mpi_function_histogram,
)
from repro.mpiknow import MPI_COMMON_CORE
from repro.utils.textio import format_table

from .conftest import save_result, save_text


def test_table1b_common_core_counts(benchmark, bench_corpus):
    counts = benchmark.pedantic(common_core_counts, args=(bench_corpus,),
                                rounds=1, iterations=1)
    histogram = mpi_function_histogram(bench_corpus)

    rows = [[name, counts[name]] for name in MPI_COMMON_CORE]
    table = format_table(["Function", "Amount (per file)"], rows)
    print("\nTable Ib — MPI Common Core\n" + table)
    save_result("table1b_common_core", {"common_core": counts, "histogram": histogram})
    save_text("table1b_common_core", table)

    # The four environment-management functions head the distribution.
    top_four = set(list(histogram)[:4])
    assert top_four == {"MPI_Init", "MPI_Finalize", "MPI_Comm_rank", "MPI_Comm_size"}
    # Every common-core function occurs in the corpus.
    assert all(counts[name] > 0 for name in MPI_COMMON_CORE)
    # Decreasing-histogram shape.
    assert is_exponentially_decreasing(histogram)
