"""Table Ia — corpus code-length distribution.

Paper values (59,446 mined files): <=10: 2,670; 11-50: 22,361; 51-99: 14,078;
>=100: 10,575.  The synthetic corpus is smaller but must reproduce the shape:
the 11-50 bucket dominates the portion of the corpus that survives the
320-token cap.
"""

from repro.corpus.statistics import code_length_distribution
from repro.utils.textio import format_table

from .conftest import save_result, save_text


def test_table1a_code_length_distribution(benchmark, bench_corpus):
    buckets = benchmark.pedantic(code_length_distribution, args=(bench_corpus,),
                                 rounds=1, iterations=1)

    rows = [[label, count] for label, count in buckets.items()]
    table = format_table(["# Line", "Amount"], rows)
    print("\nTable Ia — code lengths\n" + table)
    save_result("table1a_code_lengths", buckets)
    save_text("table1a_code_lengths", table)

    assert sum(buckets.values()) == len(bench_corpus)
    # Shape: the 11-50 line bucket dominates (the paper's corpus after the
    # token cap is concentrated there too).
    assert buckets["11-50"] == max(buckets.values())
