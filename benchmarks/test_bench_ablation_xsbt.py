"""Ablation A1 — the X-SBT structural input.

SPT-Code's design (and hence MPI-RICAL's) feeds the encoder both the plain
code tokens and the X-SBT linearised AST.  This ablation trains two small
models — identical except that one drops the X-SBT half of the encoder input —
for the same number of epochs and compares validation loss / token accuracy,
and also reports the input-length cost of carrying the structural channel.
"""

import numpy as np

from repro.model.config import ExperimentConfig, ModelConfig, TrainingConfig
from repro.mpirical import MPIRical
from repro.tokenization.code_tokenizer import ExampleEncoder, SequenceConfig
from repro.utils.textio import format_table

from .conftest import save_result, save_text


def _ablation_config(use_xsbt: bool) -> ExperimentConfig:
    return ExperimentConfig(
        model=ModelConfig(d_model=32, num_heads=2, num_encoder_layers=1,
                          num_decoder_layers=1, ffn_dim=64, dropout=0.0, seed=5),
        training=TrainingConfig(batch_size=8, epochs=2, learning_rate=2.5e-3,
                                warmup_steps=10, label_smoothing=0.0, seed=5),
        max_source_tokens=200, max_xsbt_tokens=80, max_target_tokens=240,
        use_xsbt=use_xsbt,
    )


def _train_variant(train, validation, use_xsbt: bool):
    model = MPIRical.fit(train, validation, _ablation_config(use_xsbt))
    last = model.history.epochs[-1]
    return {
        "use_xsbt": use_xsbt,
        "validation_loss": last.validation_loss,
        "validation_accuracy": last.validation_accuracy,
        "train_loss": last.train_loss,
    }


def test_ablation_xsbt_input(benchmark, bench_dataset):
    train = bench_dataset.splits.train[:64]
    validation = bench_dataset.splits.validation[:12]

    def run_both():
        with_xsbt = _train_variant(train, validation, True)
        without_xsbt = _train_variant(train, validation, False)
        return with_xsbt, without_xsbt

    with_xsbt, without_xsbt = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Encoder input length overhead of the structural channel.
    encoder = ExampleEncoder.fit(train, SequenceConfig(max_source_tokens=200,
                                                       max_xsbt_tokens=80))
    with_lengths = [len(encoder.encoder_tokens(e)) for e in train]
    encoder_plain = ExampleEncoder.fit(train, SequenceConfig(max_source_tokens=200),
                                       use_xsbt=False)
    plain_lengths = [len(encoder_plain.encoder_tokens(e)) for e in train]

    rows = [
        ["code + X-SBT", f"{with_xsbt['validation_loss']:.4f}",
         f"{with_xsbt['validation_accuracy']:.3f}", f"{np.mean(with_lengths):.0f}"],
        ["code only", f"{without_xsbt['validation_loss']:.4f}",
         f"{without_xsbt['validation_accuracy']:.3f}", f"{np.mean(plain_lengths):.0f}"],
    ]
    table = format_table(["Encoder input", "Val loss", "Val token acc", "Mean input len"],
                         rows)
    print("\nAblation A1 — X-SBT structural input\n" + table)
    save_result("ablation_xsbt", {"with_xsbt": with_xsbt, "without_xsbt": without_xsbt,
                                  "mean_len_with": float(np.mean(with_lengths)),
                                  "mean_len_without": float(np.mean(plain_lengths))})
    save_text("ablation_xsbt", table)

    assert np.isfinite(with_xsbt["validation_loss"])
    assert np.isfinite(without_xsbt["validation_loss"])
    # The structural channel costs encoder length.
    assert np.mean(with_lengths) > np.mean(plain_lengths)
