"""Table II — MPI-RICAL on the MPICodeCorpus test split.

Paper values: M-F1 0.87, M-Precision 0.85, M-Recall 0.89, MCC-F1 0.89,
MCC-Precision 0.91, MCC-Recall 0.87, BLEU 0.93, Meteor 0.62, Rouge-l 0.95,
ACC 0.57.

The reproduction trains its Transformer from scratch on CPU (no SPT-Code
pre-training, far fewer parameters and optimisation steps), so absolute
numbers are lower; the asserted shape is:

* the common-core scores (MCC-*) are at least as good as the all-function
  scores (M-*) — the model learns frequent functions best;
* ROUGE-L >= BLEU >= exact match (the same ordering as the paper's 0.95 /
  0.93 / 0.57);
* the trained model beats a no-op prediction (which would score 0 on every
  classification metric).
"""

from .conftest import bench_profile, save_result, save_text


def test_table2_corpus_evaluation(benchmark, bench_model, bench_dataset, bench_settings):
    test_split = bench_dataset.splits.test
    limit = min(bench_settings["eval_limit"], len(test_split))

    evaluation = benchmark.pedantic(
        bench_model.evaluate, args=(test_split,), kwargs={"limit": limit},
        rounds=1, iterations=1,
    )

    table = evaluation.to_table()
    print(f"\nTable II — MPICodeCorpus test set (profile={bench_profile()}, n={limit})\n"
          + table)
    save_result("table2_corpus_eval", evaluation.as_dict())
    save_text("table2_corpus_eval", table)

    scores = evaluation.as_dict()
    # All metrics are well-defined probabilities.
    assert all(0.0 <= v <= 1.0 for v in scores.values())
    # Text-similarity ordering mirrors the paper: Rouge-l >= BLEU >= ACC.
    assert scores["Rouge-l"] >= scores["BLEU"] >= scores["ACC"]
    # The common core is predicted at least as well as the full function set.
    assert scores["MCC-F1"] >= scores["M-F1"] - 1e-9
    # The model must do strictly better than predicting nothing.
    assert scores["Rouge-l"] > 0.2
