"""Serving throughput — batched vs. sequential greedy decoding.

The serving layer's reason to exist: one ``decode_step`` for a batch of B
sequences amortises the per-step Python/autograd overhead that dominates at
serving sizes, so batched decoding should deliver a multiple of sequential
tokens/sec on identical inputs.  The acceptance bar (ISSUE 1) is >= 2x at
batch size >= 8; measured speedups on a laptop CPU are typically 4-6x.

Also reports the end-to-end serving view: the same programs pushed through
:class:`InferenceService` concurrently (micro-batching + cache) versus a
sequential ``predict_code`` loop.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.model.generation import greedy_decode, greedy_decode_batch
from repro.utils.textio import format_table

from .conftest import save_result, save_text

BATCH_SIZE = 8
MAX_LENGTH = 120


def _decode_inputs(bench_model, bench_dataset):
    sources = [ex.source_code for ex in bench_dataset.splits.test[:BATCH_SIZE]]
    encoded = [bench_model._encode_for_inference(src, None) for src in sources]
    return sources, encoded


def test_batched_decode_throughput(benchmark, bench_model, bench_dataset):
    sources, encoded = _decode_inputs(bench_model, bench_dataset)
    assert len(encoded) >= BATCH_SIZE
    vocab = bench_model.encoder.vocab
    decode_args = dict(sos_id=vocab.sos_id, eos_id=vocab.eos_id,
                       pad_id=vocab.pad_id, max_length=MAX_LENGTH)

    def sequential():
        return [greedy_decode(bench_model.model, ids, **decode_args)
                for ids in encoded]

    def batched():
        return greedy_decode_batch(bench_model.model, encoded, **decode_args)

    # Warm-up (NumPy/BLAS first-call effects), then correctness.
    assert batched() == sequential()

    # Best-of-2 timings: the assertion below gates CI, so one noisy-neighbor
    # blip on a shared runner must not fail the build.
    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - start

    sequential_out, sequential_s = timed(sequential)
    _, sequential_retry = timed(sequential)
    sequential_s = min(sequential_s, sequential_retry)

    start = time.perf_counter()
    batched_out = benchmark.pedantic(batched, rounds=1, iterations=1)
    batched_s = time.perf_counter() - start
    _, batched_retry = timed(batched)
    batched_s = min(batched_s, batched_retry)

    tokens = sum(len(ids) for ids in sequential_out)
    sequential_tps = tokens / sequential_s
    batched_tps = tokens / batched_s
    speedup = batched_tps / sequential_tps

    rows = [
        ["sequential greedy_decode", f"{sequential_s:.2f}", f"{sequential_tps:.1f}", "1.00x"],
        [f"greedy_decode_batch (B={len(encoded)})", f"{batched_s:.2f}",
         f"{batched_tps:.1f}", f"{speedup:.2f}x"],
    ]
    table = format_table(["Decoder", "Wall s", "Tokens/s", "Speedup"], rows)
    print(f"\nServing throughput — batched vs sequential decode "
          f"({tokens} tokens)\n" + table)
    save_result("serving_throughput", {
        "batch_size": len(encoded),
        "generated_tokens": tokens,
        "sequential_seconds": sequential_s,
        "batched_seconds": batched_s,
        "sequential_tokens_per_s": sequential_tps,
        "batched_tokens_per_s": batched_tps,
        "speedup": speedup,
    })
    save_text("serving_throughput", table)

    assert batched_out == sequential_out
    assert speedup >= 2.0, (
        f"batched decode must be >= 2x sequential, got {speedup:.2f}x")


def test_service_end_to_end_throughput(bench_model, bench_dataset):
    """Concurrent clients through the full service vs. a sequential loop."""
    from repro.model.generation import GenerationConfig
    from repro.serving import InferenceService

    sources, _ = _decode_inputs(bench_model, bench_dataset)
    generation = GenerationConfig(max_length=MAX_LENGTH)

    start = time.perf_counter()
    for src in sources:
        bench_model.predict_code(src, generation=generation)
    sequential_s = time.perf_counter() - start

    with InferenceService(bench_model, max_batch_size=BATCH_SIZE, max_wait_ms=20,
                          num_workers=2, cache_capacity=64,
                          generation=generation) as service:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(sources)) as pool:
            served = list(pool.map(lambda s: service.advise(s, timeout=600), sources))
        concurrent_s = time.perf_counter() - start
        # Re-advising the same buffers is nearly free (cache hits).
        start = time.perf_counter()
        for src in sources:
            service.advise(src, timeout=600)
        cached_s = time.perf_counter() - start
        snapshot = service.metrics()

    rows = [
        ["sequential predict_code", f"{sequential_s:.2f}", "1.00x"],
        ["InferenceService (concurrent)", f"{concurrent_s:.2f}",
         f"{sequential_s / concurrent_s:.2f}x"],
        ["InferenceService (cache hits)", f"{cached_s:.4f}",
         f"{sequential_s / cached_s:.0f}x"],
    ]
    table = format_table(["Path", "Wall s", "Speedup"], rows)
    print(f"\nServing end-to-end — {len(sources)} programs\n" + table)
    save_result("serving_end_to_end", {
        "programs": len(sources),
        "sequential_seconds": sequential_s,
        "concurrent_seconds": concurrent_s,
        "cached_seconds": cached_s,
        "metrics": snapshot,
    })
    save_text("serving_end_to_end", table)

    assert len(served) == len(sources)
    assert snapshot["cache_hits"] >= len(sources)   # second sweep all hit
    assert snapshot["errors_total"] == 0
    # The concurrent path should win comfortably (measured ~2.4x); the assert
    # only guards gross regression, with headroom for noisy shared runners.
    assert concurrent_s < sequential_s * 1.5
