"""Table III — MPI-RICAL on the 11 numerical-computation benchmark programs.

Paper totals: M-F1 0.91, M-Precision 0.98, M-Recall 0.86 (precision above
recall — the model rarely inserts a wrong call but sometimes misses one).
The paper additionally validates generated programs by compiling and running
them; the reproduction does the same on the simulated MPI runtime.
"""

from repro.benchprograms import BENCHMARK_PROGRAMS, check_for
from repro.dataset.removal import remove_mpi_calls
from repro.evaluation.report import evaluate_benchmark
from repro.mpirical.suggestions import apply_suggestions
from repro.mpisim import validate_program

from .conftest import bench_profile, save_result, save_text


def _predict_all(bench_model):
    rows = []
    predictions = {}
    for program in BENCHMARK_PROGRAMS:
        stripped = remove_mpi_calls(program.source).stripped_code
        result = bench_model.predict_code(stripped)
        rows.append((program.name, result.generated_code, program.source))
        predictions[program.name] = result
    return rows, predictions


def test_table3_numerical_benchmark(benchmark, bench_model):
    rows, predictions = benchmark.pedantic(_predict_all, args=(bench_model,),
                                           rounds=1, iterations=1)
    table3 = evaluate_benchmark(rows)

    # Validity check of the *suggested* rewrites: apply the model's insertion
    # suggestions to the stripped program and run it on the simulated MPI
    # runtime (the paper compiles and runs the generated programs).
    validity = {}
    for program in BENCHMARK_PROGRAMS:
        stripped = remove_mpi_calls(program.source).stripped_code
        rewritten = apply_suggestions(stripped, predictions[program.name].suggestions)
        verdict = validate_program(rewritten, num_ranks=program.num_ranks,
                                   check=check_for(program.name).check, timeout=20.0)
        validity[program.name] = {
            "parses": verdict.parses,
            "runs": verdict.runs,
            "check_passed": verdict.check_passed,
        }

    text = table3.to_table()
    print(f"\nTable III — numerical computations benchmark (profile={bench_profile()})\n"
          + text)
    print("validity (simulated compile-and-run of suggested rewrites):")
    for name, v in validity.items():
        print(f"  {name}: parses={v['parses']} runs={v['runs']} check={v['check_passed']}")

    save_result("table3_numerical", {
        "rows": [vars(p) for p in table3.programs],
        "total": vars(table3.total),
        "validity": validity,
    })
    save_text("table3_numerical", text)

    assert len(table3.programs) == 11
    assert table3.total is not None
    # Shape: scores are valid, and precision >= recall on the pooled total
    # (the paper reports 0.98 precision vs 0.86 recall) unless both are zero.
    total = table3.total
    assert 0.0 <= total.f1 <= 1.0
    if total.precision > 0 or total.recall > 0:
        assert total.precision >= total.recall - 0.05
    # Validity verdicts were produced for every program.  Under the quick
    # profile the under-trained model's suggested statements are not always
    # syntactically complete, so parse success is reported (and recorded in
    # the results JSON) rather than asserted; the oracle-reconstruction runs
    # in tests/test_integration_end_to_end.py guarantee the checking machinery
    # itself is sound.
    assert set(validity) == {p.name for p in BENCHMARK_PROGRAMS}
    parse_rate = sum(1 for v in validity.values() if v["parses"]) / len(validity)
    print(f"suggested-rewrite parse rate: {parse_rate:.2f}")
